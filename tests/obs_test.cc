// Unit tests for the obs layer: metrics registry, histograms, the
// hierarchical span tracer, lock-contention attribution, and the
// time-series sampler (driven deterministically via SampleOnce and an
// injected clock).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/lock_metrics.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "util/mutex.h"

namespace aru::obs {
namespace {

// --- Counter / Gauge ---------------------------------------------------

TEST(CounterTest, IncrementAndAdd) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(GaugeTest, SetAddAndNegative) {
  Gauge gauge;
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.value(), 7);
  gauge.Add(-20);
  EXPECT_EQ(gauge.value(), -13);
  gauge.Reset();
  EXPECT_EQ(gauge.value(), 0);
}

// --- Histogram ---------------------------------------------------------

TEST(HistogramTest, EmptySnapshot) {
  Histogram histogram;
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.Percentile(50), 0.0);
  EXPECT_EQ(snap.Percentile(99), 0.0);
  EXPECT_EQ(snap.mean(), 0.0);
}

TEST(HistogramTest, SingleSampleIsExact) {
  Histogram histogram;
  histogram.Record(777);
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 777u);
  EXPECT_EQ(snap.min, 777u);
  EXPECT_EQ(snap.max, 777u);
  // Percentiles of a single sample are clamped to [min, max], so they
  // are exact regardless of the bucket's width.
  EXPECT_EQ(snap.Percentile(0), 777.0);
  EXPECT_EQ(snap.Percentile(50), 777.0);
  EXPECT_EQ(snap.Percentile(100), 777.0);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds {0}; bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);

  Histogram histogram;
  histogram.Record(0);  // bucket 0
  histogram.Record(1);  // bucket 1
  histogram.Record(2);  // bucket 2
  histogram.Record(3);  // bucket 2
  histogram.Record(4);  // bucket 3
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 2u);
  EXPECT_EQ(snap.buckets[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 4u);
}

TEST(HistogramTest, OverflowBucket) {
  Histogram histogram;
  const std::uint64_t huge = std::uint64_t{1} << 60;
  histogram.Record(huge);
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.buckets[Histogram::kOverflowBucket], 1u);
  EXPECT_EQ(snap.max, huge);
  // The percentile estimate is clamped to the observed max, so even an
  // overflow-bucket sample reports a finite, exact value.
  EXPECT_EQ(snap.Percentile(99), static_cast<double>(huge));
}

TEST(HistogramTest, PercentilesAreMonotonicAndBounded) {
  Histogram histogram;
  for (std::uint64_t v = 1; v <= 1000; ++v) histogram.Record(v);
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.count, 1000u);
  const double p50 = snap.Percentile(50);
  const double p95 = snap.Percentile(95);
  const double p99 = snap.Percentile(99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, static_cast<double>(snap.min));
  EXPECT_LE(p99, static_cast<double>(snap.max));
  // Log2 buckets are coarse, but the median of 1..1000 must land well
  // inside the middle of the range.
  EXPECT_GT(p50, 100.0);
  EXPECT_LT(p50, 1000.0);
  EXPECT_EQ(snap.sum, 500500u);
  EXPECT_DOUBLE_EQ(snap.mean(), 500.5);
}

TEST(HistogramTest, ResetClears) {
  Histogram histogram;
  histogram.Record(5);
  histogram.Record(9);
  EXPECT_EQ(histogram.count(), 2u);
  histogram.Reset();
  EXPECT_EQ(histogram.count(), 0u);
  const Histogram::Snapshot snap = histogram.TakeSnapshot();
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.Percentile(50), 0.0);
}

// --- Registry ----------------------------------------------------------

TEST(RegistryTest, FindOrCreateReturnsSamePointer) {
  Registry registry;
  Counter* a = registry.GetCounter("ops_total", "operations");
  Counter* b = registry.GetCounter("ops_total");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
  a->Increment();
  EXPECT_EQ(b->value(), 1u);
}

TEST(RegistryTest, KindMismatchReturnsNull) {
  Registry registry;
  ASSERT_NE(registry.GetCounter("metric"), nullptr);
  EXPECT_EQ(registry.GetGauge("metric"), nullptr);
  EXPECT_EQ(registry.GetHistogram("metric"), nullptr);
}

TEST(RegistryTest, FindAbsentReturnsNull) {
  Registry registry;
  EXPECT_EQ(registry.FindCounter("nope"), nullptr);
  EXPECT_EQ(registry.FindGauge("nope"), nullptr);
  EXPECT_EQ(registry.FindHistogram("nope"), nullptr);
}

TEST(RegistryTest, ResetZeroesButKeepsRegistration) {
  Registry registry;
  Counter* counter = registry.GetCounter("c");
  Gauge* gauge = registry.GetGauge("g");
  Histogram* histogram = registry.GetHistogram("h");
  counter->Add(3);
  gauge->Set(-2);
  histogram->Record(99);
  registry.Reset();
  EXPECT_EQ(registry.FindCounter("c"), counter);
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_EQ(gauge->value(), 0);
  EXPECT_EQ(histogram->count(), 0u);
}

TEST(RegistryTest, OrDefaultResolvesNull) {
  Registry registry;
  EXPECT_EQ(&Registry::OrDefault(&registry), &registry);
  EXPECT_EQ(&Registry::OrDefault(nullptr), &Registry::Default());
}

// A tiny structural check: every brace/bracket balances and the
// expected keys appear. Not a full JSON parser, but enough to catch
// broken escaping or truncation.
void ExpectBalancedJson(const std::string& json) {
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(RegistryTest, DumpJsonIsWellFormed) {
  Registry registry;
  registry.GetCounter("reads_total", "total reads")->Add(7);
  registry.GetGauge("active", "active things")->Set(-4);
  Histogram* histogram = registry.GetHistogram("latency_us", "latency");
  histogram->Record(12);
  histogram->Record(120000);

  const std::string json = registry.DumpJson();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"reads_total\""), std::string::npos);
  EXPECT_NE(json.find("\"active\""), std::string::npos);
  EXPECT_NE(json.find("\"latency_us\""), std::string::npos);
  EXPECT_NE(json.find("-4"), std::string::npos);
}

TEST(RegistryTest, DumpTextListsMetrics) {
  Registry registry;
  registry.GetCounter("widgets_total", "widget count")->Add(5);
  const std::string text = registry.DumpText();
  EXPECT_NE(text.find("widgets_total"), std::string::npos);
  EXPECT_NE(text.find("5"), std::string::npos);
}

// --- Tracer ------------------------------------------------------------

TEST(TracerTest, DisabledRecordsNothing) {
  Tracer tracer(8);
  tracer.set_enabled(false);
  tracer.RecordComplete("test", "event", 0, 1);
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(TracerTest, RingWraparoundKeepsNewestOldestFirst) {
  Tracer tracer(4);
  tracer.set_enabled(true);
  for (std::uint64_t i = 0; i < 6; ++i) {
    tracer.RecordComplete("test", "event", /*ts_us=*/i * 10, /*dur_us=*/1);
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 2u);
  const std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // The two oldest events (ts 0, 10) were evicted; the survivors come
  // back oldest first.
  EXPECT_EQ(events[0].ts_us, 20u);
  EXPECT_EQ(events[1].ts_us, 30u);
  EXPECT_EQ(events[2].ts_us, 40u);
  EXPECT_EQ(events[3].ts_us, 50u);
}

TEST(TracerTest, ClearResets) {
  Tracer tracer(4);
  tracer.set_enabled(true);
  for (int i = 0; i < 6; ++i) tracer.RecordComplete("t", "e", 0, 0);
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.capacity(), 4u);
}

TEST(TracerTest, ChromeJsonIsWellFormed) {
  Tracer tracer(16);
  tracer.set_enabled(true);
  tracer.RecordComplete("lld", "aru", 100, 50);
  tracer.RecordComplete("lld", "cleaner_pass", 200, 25, "copied_blocks", 7);
  const std::string json = tracer.DumpChromeJson();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"cleaner_pass\""), std::string::npos);
  EXPECT_NE(json.find("\"copied_blocks\""), std::string::npos);
  // Complete events use phase "X".
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

// --- SpanTimer ---------------------------------------------------------

TEST(SpanTimerTest, RecordsIntoHistogramAndTracer) {
  Tracer tracer(8);
  tracer.set_enabled(true);
  Histogram histogram;
  {
    SpanTimer span(&tracer, "test", "work", &histogram);
    span.SetArg("items", 3);
  }
  EXPECT_EQ(histogram.count(), 1u);
  const std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "work");
  ASSERT_NE(events[0].arg_name, nullptr);
  EXPECT_STREQ(events[0].arg_name, "items");
  EXPECT_EQ(events[0].arg_value, 3u);
}

TEST(SpanTimerTest, FinishIsIdempotent) {
  Histogram histogram;
  SpanTimer span(nullptr, "test", "work", &histogram);
  span.Finish();
  span.Finish();  // second call must not record again
  EXPECT_EQ(histogram.count(), 1u);
}

TEST(SpanTimerTest, HistogramOnlyWithNullTracer) {
  Histogram histogram;
  { SpanTimer span(nullptr, "test", "work", &histogram); }
  EXPECT_EQ(histogram.count(), 1u);
}

// --- Hierarchical spans ------------------------------------------------

TEST(SpanTest, NestedSpansLinkParentIds) {
  Tracer tracer(8);
  tracer.set_enabled(true);
  std::uint64_t outer_id = 0;
  std::uint64_t inner_id = 0;
  {
    Span outer(&tracer, "test", "outer");
    outer_id = outer.id();
    EXPECT_NE(outer_id, 0u);
    EXPECT_EQ(Tracer::CurrentSpanId(), outer_id);
    {
      Span inner(&tracer, "test", "inner");
      inner_id = inner.id();
      EXPECT_EQ(Tracer::CurrentSpanId(), inner_id);
    }
    EXPECT_EQ(Tracer::CurrentSpanId(), outer_id);
  }
  EXPECT_EQ(Tracer::CurrentSpanId(), 0u);
  const std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 2u);  // inner finishes (and records) first
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_EQ(events[0].id, inner_id);
  EXPECT_EQ(events[0].parent_id, outer_id);
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[1].id, outer_id);
  EXPECT_EQ(events[1].parent_id, 0u);
}

TEST(SpanTest, UnbalancedFinishRemovesOnlyItsOwnFrame) {
  // Finishing the outer span while the inner one is still live must
  // not corrupt the stack: the next span still parents under inner.
  Tracer tracer(8);
  tracer.set_enabled(true);
  Span outer(&tracer, "test", "outer");
  Span inner(&tracer, "test", "inner");
  const std::uint64_t inner_id = inner.id();
  outer.Finish();  // out of order
  Span sibling(&tracer, "test", "nested_late");
  sibling.Finish();
  inner.Finish();
  const std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[1].name, "nested_late");
  EXPECT_EQ(events[1].parent_id, inner_id);
  EXPECT_EQ(Tracer::CurrentSpanId(), 0u);
}

TEST(SpanTest, CrossThreadExplicitParent) {
  // The async hand-off pattern: the enqueue site captures its span id
  // and the worker constructs its span with that explicit parent, so
  // the flusher's device write nests under the seal that produced it.
  Tracer tracer(8);
  tracer.set_enabled(true);
  std::uint64_t parent_id = 0;
  {
    Span parent(&tracer, "test", "seal");
    parent_id = Tracer::CurrentSpanId();
    std::thread worker([&tracer, parent_id] {
      {
        Span child(&tracer, "test", "device_write", parent_id, nullptr);
        // Only the parent comes from the argument: the span still
        // becomes current on ITS OWN thread, so further spans opened by
        // the worker nest under the hand-off.
        EXPECT_EQ(Tracer::CurrentSpanId(), child.id());
      }
      EXPECT_EQ(Tracer::CurrentSpanId(), 0u);
    });
    worker.join();
  }
  const std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "device_write");
  EXPECT_EQ(events[0].parent_id, parent_id);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST(SpanTest, DisabledTracerIsHistogramOnly) {
  Tracer tracer(8);
  tracer.set_enabled(false);
  Histogram histogram;
  {
    Span span(&tracer, "test", "work", &histogram);
    EXPECT_EQ(span.id(), 0u);
    EXPECT_EQ(Tracer::CurrentSpanId(), 0u);
  }
  EXPECT_EQ(histogram.count(), 1u);
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(SpanTest, ChromeJsonCarriesSpanIds) {
  Tracer tracer(8);
  tracer.set_enabled(true);
  {
    Span outer(&tracer, "test", "outer");
    Span inner(&tracer, "test", "inner");
  }
  const std::string json = tracer.DumpChromeJson();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"span_id\":"), std::string::npos);
  EXPECT_NE(json.find("\"parent_id\":"), std::string::npos);
}

TEST(SpanBreakdownTest, AggregatesDescendantsOfRoot) {
  // Synthetic span tree recorded directly (deterministic durations):
  //   root(1) -> seal(2) -> device_write(4)
  //           -> seal(3)
  // plus an unrelated root(5) whose child must not leak in.
  Tracer tracer(16);
  tracer.set_enabled(true);
  tracer.RecordSpan("t", "device_write", 0, 40, /*id=*/4, /*parent_id=*/2);
  tracer.RecordSpan("t", "seal", 0, 100, /*id=*/2, /*parent_id=*/1);
  tracer.RecordSpan("t", "seal", 0, 60, /*id=*/3, /*parent_id=*/1);
  tracer.RecordSpan("t", "root", 0, 200, /*id=*/1, /*parent_id=*/0);
  tracer.RecordSpan("t", "other_child", 0, 999, /*id=*/6, /*parent_id=*/5);
  tracer.RecordSpan("t", "other_root", 0, 1000, /*id=*/5, /*parent_id=*/0);
  const std::vector<SpanBreakdownEntry> breakdown =
      SpanBreakdown(tracer.Snapshot(), /*root_id=*/1);
  ASSERT_EQ(breakdown.size(), 2u);  // seal + device_write, not other_child
  EXPECT_EQ(breakdown[0].name, "seal");  // 160 us total, sorted first
  EXPECT_EQ(breakdown[0].total_us, 160u);
  EXPECT_EQ(breakdown[0].count, 2u);
  EXPECT_EQ(breakdown[1].name, "device_write");
  EXPECT_EQ(breakdown[1].total_us, 40u);
  EXPECT_EQ(breakdown[1].count, 1u);
}

// --- Lock-contention attribution ---------------------------------------

TEST(LockMetricsTest, ContendedExclusiveWaitIsAttributed) {
  Registry registry;
  Mutex mu{"test_site"};
  const auto sink = BindLockSite(&registry, mu);
  ASSERT_NE(sink, nullptr);

  const Counter* contended =
      registry.FindCounter("aru_lock_contended_total_test_site_exclusive");
  ASSERT_NE(contended, nullptr);
  // Contention needs the second thread to reach the blocking acquire
  // while the lock is held; retry until the race lands (first attempt
  // in practice, but sanitizer schedulers can starve the contender).
  for (int attempt = 0; attempt < 100 && contended->value() == 0; ++attempt) {
    mu.Lock();
    std::atomic<bool> started{false};
    std::thread blocked([&mu, &started] {
      started.store(true);
      mu.Lock();  // must take the contended slow path
      mu.Unlock();
    });
    while (!started.load()) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    mu.Unlock();
    blocked.join();
  }
  EXPECT_GE(contended->value(), 1u);
  const Histogram* waits =
      registry.FindHistogram("aru_lock_wait_us_test_site_exclusive");
  ASSERT_NE(waits, nullptr);
  EXPECT_EQ(waits->count(), contended->value());
  // A plain Mutex site has no shared-mode pair.
  EXPECT_EQ(registry.FindCounter("aru_lock_contended_total_test_site_shared"),
            nullptr);
}

TEST(LockMetricsTest, SharedAndExclusiveWaitsAreSeparated) {
  Registry registry;
  SharedMutex mu{"rw_site"};
  const auto sink = BindLockSite(&registry, mu);
  ASSERT_NE(sink, nullptr);

  const Counter* shared =
      registry.FindCounter("aru_lock_contended_total_rw_site_shared");
  ASSERT_NE(shared, nullptr);
  for (int attempt = 0; attempt < 100 && shared->value() == 0; ++attempt) {
    mu.Lock();  // exclusive hold forces the reader into the slow path
    std::atomic<bool> started{false};
    std::thread reader([&mu, &started] {
      started.store(true);
      mu.ReaderLock();
      mu.ReaderUnlock();
    });
    while (!started.load()) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    mu.Unlock();
    reader.join();
  }
  EXPECT_GE(shared->value(), 1u);
  const Histogram* shared_waits =
      registry.FindHistogram("aru_lock_wait_us_rw_site_shared");
  ASSERT_NE(shared_waits, nullptr);
  EXPECT_EQ(shared_waits->count(), shared->value());
  // The reader never contended exclusively.
  EXPECT_EQ(
      registry.FindCounter("aru_lock_contended_total_rw_site_exclusive")
          ->value(),
      0u);
}

TEST(LockMetricsTest, UnnamedMutexDoesNotBind) {
  Registry registry;
  Mutex mu;  // arulint: allow(named-lock) deliberately unnamed for the test.
  EXPECT_EQ(BindLockSite(&registry, mu), nullptr);
}

// --- Sampler -----------------------------------------------------------

std::atomic<std::uint64_t> g_fake_now_us{0};
std::uint64_t FakeNow() { return g_fake_now_us.load(); }

TEST(SamplerTest, SampleOnceResolvesEachMetricKind) {
  Registry registry;
  Counter* counter = registry.GetCounter("c_total");
  Gauge* gauge = registry.GetGauge("g");
  Histogram* histogram = registry.GetHistogram("h_us");

  SamplerOptions options;
  options.ring_slots = 8;
  options.now_us = &FakeNow;
  Sampler sampler(&registry, options);
  sampler.Track("c_total");
  sampler.Track("g");
  sampler.Track("h_us");
  sampler.Track("absent_metric");
  sampler.Track("c_total");  // duplicate: ignored

  counter->Add(3);
  gauge->Set(-2);
  histogram->Record(5);
  histogram->Record(6);
  g_fake_now_us = 100;
  sampler.SampleOnce();

  EXPECT_EQ(sampler.size(), 1u);
  EXPECT_EQ(sampler.dropped(), 0u);
  const std::string json = sampler.ToJson();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"ts_us\":[100]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"c_total\":[3]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"g\":[-2]"), std::string::npos) << json;
  // Histograms sample as cumulative count.
  EXPECT_NE(json.find("\"h_us\":[2]"), std::string::npos) << json;
  // Absent metrics read 0; duplicates appear once.
  EXPECT_NE(json.find("\"absent_metric\":[0]"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"c_total\""), json.rfind("\"c_total\"")) << json;
}

TEST(SamplerTest, RingWrapKeepsNewestRowsAndCountsDropped) {
  Registry registry;
  Counter* counter = registry.GetCounter("c_total");
  SamplerOptions options;
  options.ring_slots = 4;
  options.now_us = &FakeNow;
  Sampler sampler(&registry, options);
  sampler.Track("c_total");
  for (std::uint64_t i = 1; i <= 6; ++i) {
    g_fake_now_us = i * 10;
    counter->Increment();
    sampler.SampleOnce();
  }
  EXPECT_EQ(sampler.size(), 4u);
  EXPECT_EQ(sampler.dropped(), 2u);
  const std::string json = sampler.ToJson();
  // The two oldest rows (ts 10, 20) were overwritten; survivors are
  // oldest-first.
  EXPECT_NE(json.find("\"ts_us\":[30,40,50,60]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"c_total\":[3,4,5,6]"), std::string::npos) << json;
}

TEST(SamplerTest, LateTrackPadsEarlierRowsWithZero) {
  Registry registry;
  registry.GetCounter("early")->Add(7);
  registry.GetCounter("late")->Add(9);
  SamplerOptions options;
  options.ring_slots = 8;
  options.now_us = &FakeNow;
  Sampler sampler(&registry, options);
  sampler.Track("early");
  sampler.SampleOnce();
  sampler.Track("late");
  sampler.SampleOnce();
  const std::string json = sampler.ToJson();
  EXPECT_NE(json.find("\"early\":[7,7]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"late\":[0,9]"), std::string::npos) << json;
}

TEST(SamplerTest, StartAndStopAreIdempotent) {
  Registry registry;
  registry.GetCounter("c_total")->Add(1);
  SamplerOptions options;
  options.period_ms = 1;
  options.ring_slots = 64;
  Sampler sampler(&registry, options);
  sampler.Track("c_total");
  sampler.Start();
  sampler.Start();  // no-op
  // The thread samples immediately on entry, so one row is guaranteed
  // without waiting out a period.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  sampler.Stop();
  const std::size_t after_stop = sampler.size();
  EXPECT_GE(after_stop, 1u);
  sampler.Stop();  // no-op
  // Ring contents survive Stop for export.
  EXPECT_EQ(sampler.size(), after_stop);
  const std::string json = sampler.ToJson();
  EXPECT_NE(json.find("\"c_total\""), std::string::npos);
  // Destructor handles an already-stopped sampler (and a re-Start).
  sampler.Start();
}

}  // namespace
}  // namespace aru::obs
