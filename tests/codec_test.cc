// Unit tests for all on-disk codecs: superblock, segment footer,
// summary records, checkpoints, and the MinixFS formats — round trips
// plus corruption detection.
#include <gtest/gtest.h>

#include "blockdev/mem_disk.h"
#include "lld/checkpoint.h"
#include "lld/layout.h"
#include "lld/summary.h"
#include "minixfs/format.h"
#include "tests/test_util.h"
#include "util/crc32.h"

namespace aru::testing {
namespace {

using lld::Geometry;
using lld::Options;

Geometry TestGeometry() {
  MemDisk disk(32768);
  Options options;
  options.block_size = 4096;
  options.segment_size = 128 * 1024;
  auto geometry = lld::DeriveGeometry(disk, options);
  EXPECT_TRUE(geometry.ok());
  return *geometry;
}

// --- geometry derivation ---

TEST(GeometryTest, DerivesSaneLayout) {
  const Geometry g = TestGeometry();
  EXPECT_EQ(g.sector_size, 512u);
  EXPECT_EQ(g.block_size, 4096u);
  EXPECT_EQ(g.segment_size, 128u * 1024u);
  EXPECT_GT(g.slot_count, 8u);
  EXPECT_GT(g.capacity_blocks, 0u);
  // Checkpoint regions must not overlap segments.
  EXPECT_GE(g.data_start_sector,
            g.checkpoint_b_sector + g.checkpoint_capacity / g.sector_size);
  // All slots must fit on the device.
  EXPECT_LE(g.slot_first_sector(g.slot_count - 1) + g.sectors_per_segment(),
            32768u);
}

TEST(GeometryTest, RejectsTinyDevice) {
  MemDisk disk(128);  // 64 KB
  Options options;
  EXPECT_FALSE(lld::DeriveGeometry(disk, options).ok());
}

TEST(GeometryTest, RejectsBadBlockSize) {
  MemDisk disk(32768);
  Options options;
  options.block_size = 1000;  // not a multiple of the sector size
  EXPECT_FALSE(lld::DeriveGeometry(disk, options).ok());
  options.block_size = 4096;
  options.segment_size = 4096;  // must hold at least two blocks
  EXPECT_FALSE(lld::DeriveGeometry(disk, options).ok());
}

// --- superblock ---

TEST(SuperblockTest, RoundTrip) {
  const Geometry g = TestGeometry();
  const Bytes encoded = lld::EncodeSuperblock(g);
  ASSERT_EQ(encoded.size(), g.sector_size);
  ASSERT_OK_AND_ASSIGN(const Geometry decoded, lld::DecodeSuperblock(encoded));
  EXPECT_EQ(decoded.block_size, g.block_size);
  EXPECT_EQ(decoded.segment_size, g.segment_size);
  EXPECT_EQ(decoded.slot_count, g.slot_count);
  EXPECT_EQ(decoded.capacity_blocks, g.capacity_blocks);
  EXPECT_EQ(decoded.data_start_sector, g.data_start_sector);
}

TEST(SuperblockTest, DetectsCorruption) {
  const Geometry g = TestGeometry();
  Bytes encoded = lld::EncodeSuperblock(g);
  encoded[10] ^= std::byte{0xff};
  EXPECT_EQ(lld::DecodeSuperblock(encoded).status().code(),
            StatusCode::kCorruption);
}

TEST(SuperblockTest, RejectsWrongMagic) {
  Bytes zeros(512);
  EXPECT_FALSE(lld::DecodeSuperblock(zeros).ok());
}

// --- segment footer ---

TEST(FooterTest, RoundTrip) {
  lld::SegmentFooter footer;
  footer.seq = 42;
  footer.last_lsn = 999;
  footer.summary_len = 1234;
  footer.record_count = 56;
  footer.summary_crc = 0xabcdef01;
  Bytes buf(lld::kFooterSize);
  lld::EncodeFooter(footer, buf);
  ASSERT_OK_AND_ASSIGN(const auto decoded, lld::DecodeFooter(buf));
  EXPECT_EQ(decoded.seq, 42u);
  EXPECT_EQ(decoded.last_lsn, 999u);
  EXPECT_EQ(decoded.summary_len, 1234u);
  EXPECT_EQ(decoded.record_count, 56u);
  EXPECT_EQ(decoded.summary_crc, 0xabcdef01u);
}

TEST(FooterTest, DetectsBitFlip) {
  lld::SegmentFooter footer;
  footer.seq = 7;
  Bytes buf(lld::kFooterSize);
  lld::EncodeFooter(footer, buf);
  buf[8] ^= std::byte{1};
  EXPECT_FALSE(lld::DecodeFooter(buf).ok());
}

TEST(FooterTest, ZeroesAreInvalid) {
  const Bytes zeros(lld::kFooterSize);
  EXPECT_FALSE(lld::DecodeFooter(zeros).ok());
}

// --- summary records ---

TEST(SummaryTest, AllRecordTypesRoundTrip) {
  using namespace lld;
  std::vector<Record> records;
  records.emplace_back(WriteRecord{ld::BlockId{1}, ld::AruId{2}, 3,
                                   PhysAddr(4, 5)});
  records.emplace_back(AllocBlockRecord{ld::BlockId{6}, ld::ListId{7},
                                        ld::AruId{}, 8});
  records.emplace_back(AllocListRecord{ld::ListId{9}, ld::AruId{10}, 11});
  records.emplace_back(InsertRecord{ld::ListId{12}, ld::BlockId{13},
                                    ld::BlockId{}, ld::AruId{14}, 15});
  records.emplace_back(DeleteBlockRecord{ld::BlockId{16}, ld::AruId{}, 17});
  records.emplace_back(DeleteListRecord{ld::ListId{18}, ld::AruId{19}, 20});
  records.emplace_back(CommitRecord{ld::AruId{21}, 22});
  records.emplace_back(AbortRecord{ld::AruId{23}, 24});
  records.emplace_back(RewriteRecord{ld::BlockId{25}, 26, 27,
                                     PhysAddr(28, 29)});
  records.emplace_back(MoveRecord{ld::ListId{30}, ld::BlockId{31},
                                  ld::BlockId{32}, ld::AruId{33}, 34});

  Bytes encoded;
  for (const Record& record : records) {
    const std::size_t n = EncodeRecord(record, encoded);
    EXPECT_LE(n, kMaxRecordSize);
  }
  ASSERT_OK_AND_ASSIGN(const auto decoded, DecodeSummary(encoded));
  ASSERT_EQ(decoded.size(), records.size());

  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(decoded[i].index(), records[i].index()) << "record " << i;
    EXPECT_EQ(RecordLsn(decoded[i]), RecordLsn(records[i])) << "record " << i;
    EXPECT_EQ(RecordAru(decoded[i]), RecordAru(records[i])) << "record " << i;
  }
  const auto& write = std::get<WriteRecord>(decoded[0]);
  EXPECT_EQ(write.block, ld::BlockId{1});
  EXPECT_EQ(write.phys, PhysAddr(4, 5));
  const auto& insert = std::get<InsertRecord>(decoded[3]);
  EXPECT_EQ(insert.pred, ld::kListHead);
  const auto& rewrite = std::get<RewriteRecord>(decoded[8]);
  EXPECT_EQ(rewrite.orig_ts, 26u);
  const auto& move = std::get<MoveRecord>(decoded.back());
  EXPECT_EQ(move.list, ld::ListId{30});
  EXPECT_EQ(move.block, ld::BlockId{31});
  EXPECT_EQ(move.pred, ld::BlockId{32});
}

TEST(SummaryTest, GarbageIsCorruption) {
  Bytes garbage(50, std::byte{0xee});
  EXPECT_EQ(lld::DecodeSummary(garbage).status().code(),
            StatusCode::kCorruption);
}

TEST(SummaryTest, TruncatedRecordIsCorruption) {
  Bytes encoded;
  lld::EncodeRecord(lld::CommitRecord{ld::AruId{1}, 2}, encoded);
  encoded.pop_back();
  EXPECT_FALSE(lld::DecodeSummary(encoded).ok());
}

TEST(PhysAddrTest, EncodingInvariants) {
  const lld::PhysAddr none;
  EXPECT_FALSE(none.valid());
  const lld::PhysAddr addr(0, 0);
  EXPECT_TRUE(addr.valid());  // slot 0 / index 0 is distinct from "none"
  EXPECT_EQ(addr.slot(), 0u);
  EXPECT_EQ(addr.index(), 0u);
  const lld::PhysAddr other(7, 123);
  EXPECT_EQ(lld::PhysAddr::FromEncoded(other.encoded()), other);
  EXPECT_NE(addr, other);
}

// --- checkpoint ---

TEST(CheckpointTest, RoundTripWithTables) {
  lld::CheckpointData data;
  data.stamp = 5;
  data.covered_seq = 17;
  data.next_lsn = 1000;
  data.next_block_id = 200;
  lld::BlockMap blocks;
  lld::BlockMeta meta;
  meta.allocated = true;
  meta.phys = lld::PhysAddr(3, 4);
  meta.successor = ld::BlockId{12};
  meta.list = ld::ListId{2};
  meta.ts = 77;
  blocks.Set(ld::BlockId{11}, meta);
  lld::ListTable lists;
  lld::ListMeta lmeta;
  lmeta.exists = true;
  lmeta.first = ld::BlockId{11};
  lmeta.last = ld::BlockId{12};
  lists.Set(ld::ListId{2}, lmeta);

  const Bytes encoded = lld::EncodeCheckpoint(data, blocks, lists);
  lld::CheckpointData out;
  lld::BlockMap out_blocks;
  lld::ListTable out_lists;
  ASSERT_OK(lld::DecodeCheckpoint(encoded, out, out_blocks, out_lists));
  EXPECT_EQ(out.stamp, 5u);
  EXPECT_EQ(out.covered_seq, 17u);
  EXPECT_EQ(out.next_lsn, 1000u);
  ASSERT_NE(out_blocks.Find(ld::BlockId{11}), nullptr);
  EXPECT_EQ(out_blocks.Find(ld::BlockId{11})->phys, lld::PhysAddr(3, 4));
  EXPECT_EQ(out_blocks.Find(ld::BlockId{11})->ts, 77u);
  ASSERT_NE(out_lists.Find(ld::ListId{2}), nullptr);
  EXPECT_EQ(out_lists.Find(ld::ListId{2})->first, ld::BlockId{11});
}

TEST(CheckpointTest, CorruptionDetected) {
  lld::CheckpointData data;
  lld::BlockMap blocks;
  lld::ListTable lists;
  Bytes encoded = lld::EncodeCheckpoint(data, blocks, lists);
  encoded[20] ^= std::byte{1};
  lld::CheckpointData out;
  EXPECT_EQ(lld::DecodeCheckpoint(encoded, out, blocks, lists).code(),
            StatusCode::kCorruption);
}

TEST(CheckpointTest, DoubleBufferPicksNewest) {
  MemDisk device(32768);
  Options options;
  options.block_size = 4096;
  options.segment_size = 128 * 1024;
  ASSERT_OK_AND_ASSIGN(const Geometry g, lld::DeriveGeometry(device, options));

  lld::BlockMap blocks;
  lld::ListTable lists;
  lld::CheckpointData first;
  first.stamp = 2;  // region A
  first.next_lsn = 100;
  ASSERT_OK(lld::WriteCheckpointRegion(device, g, first, blocks, lists));
  lld::CheckpointData second;
  second.stamp = 3;  // region B
  second.next_lsn = 200;
  ASSERT_OK(lld::WriteCheckpointRegion(device, g, second, blocks, lists));

  lld::CheckpointData out;
  ASSERT_OK(lld::ReadNewestCheckpoint(device, g, out, blocks, lists));
  EXPECT_EQ(out.stamp, 3u);
  EXPECT_EQ(out.next_lsn, 200u);
}

TEST(CheckpointTest, TornNewerFallsBackToOlder) {
  MemDisk device(32768);
  Options options;
  options.block_size = 4096;
  options.segment_size = 128 * 1024;
  ASSERT_OK_AND_ASSIGN(const Geometry g, lld::DeriveGeometry(device, options));

  lld::BlockMap blocks;
  lld::ListTable lists;
  lld::CheckpointData old_ckpt;
  old_ckpt.stamp = 2;
  old_ckpt.next_lsn = 100;
  ASSERT_OK(lld::WriteCheckpointRegion(device, g, old_ckpt, blocks, lists));
  lld::CheckpointData new_ckpt;
  new_ckpt.stamp = 3;
  new_ckpt.next_lsn = 200;
  ASSERT_OK(lld::WriteCheckpointRegion(device, g, new_ckpt, blocks, lists));
  // Tear region B (stamp 3): scribble over its first sector.
  ASSERT_OK(device.Write(g.checkpoint_b_sector, Bytes(512, std::byte{0x5a})));

  lld::CheckpointData out;
  ASSERT_OK(lld::ReadNewestCheckpoint(device, g, out, blocks, lists));
  EXPECT_EQ(out.stamp, 2u);  // fell back to the intact region A
}

// --- MinixFS formats ---

TEST(MinixFormatTest, InodeRoundTrip) {
  minixfs::Inode inode;
  inode.type = minixfs::InodeType::kDirectory;
  inode.links = 3;
  inode.size = 123456;
  inode.data_list = ld::ListId{42};
  inode.mtime = 99;
  Bytes slot(minixfs::kInodeSize);
  minixfs::EncodeInode(inode, slot);
  const minixfs::Inode out = minixfs::DecodeInode(slot);
  EXPECT_EQ(out.type, minixfs::InodeType::kDirectory);
  EXPECT_EQ(out.links, 3u);
  EXPECT_EQ(out.size, 123456u);
  EXPECT_EQ(out.data_list, ld::ListId{42});
  EXPECT_EQ(out.mtime, 99u);
}

TEST(MinixFormatTest, DirEntryRoundTrip) {
  minixfs::DirEntry entry;
  entry.inode = 0;  // i-node 0 must be distinguishable from "free"
  entry.name = "README";
  Bytes slot(minixfs::kDirEntrySize);
  minixfs::EncodeDirEntry(entry, slot);
  const minixfs::DirEntry out = minixfs::DecodeDirEntry(slot);
  EXPECT_EQ(out.inode, 0u);
  EXPECT_EQ(out.name, "README");
}

TEST(MinixFormatTest, FreeSlotDecodes) {
  const Bytes zeros(minixfs::kDirEntrySize);
  EXPECT_EQ(minixfs::DecodeDirEntry(zeros).inode, minixfs::kNoInode);
}

TEST(MinixFormatTest, MaxLengthName) {
  minixfs::DirEntry entry;
  entry.inode = 5;
  entry.name = std::string(minixfs::kMaxNameLen, 'x');
  Bytes slot(minixfs::kDirEntrySize);
  minixfs::EncodeDirEntry(entry, slot);
  EXPECT_EQ(minixfs::DecodeDirEntry(slot).name, entry.name);
}

TEST(MinixFormatTest, SuperBlockRoundTripAndCorruption) {
  minixfs::SuperBlock sb;
  sb.inode_list = ld::ListId{2};
  sb.root = 0;
  Bytes block = minixfs::EncodeSuperBlock(sb, 4096);
  ASSERT_EQ(block.size(), 4096u);
  ASSERT_OK_AND_ASSIGN(const auto out, minixfs::DecodeSuperBlock(block));
  EXPECT_EQ(out.inode_list, ld::ListId{2});
  block[3] ^= std::byte{1};
  EXPECT_FALSE(minixfs::DecodeSuperBlock(block).ok());
}

TEST(MinixFormatTest, NameValidation) {
  EXPECT_OK(minixfs::ValidateName("ok-name_1.txt"));
  EXPECT_FALSE(minixfs::ValidateName("").ok());
  EXPECT_FALSE(minixfs::ValidateName("a/b").ok());
  EXPECT_FALSE(minixfs::ValidateName(".").ok());
  EXPECT_FALSE(minixfs::ValidateName("..").ok());
  EXPECT_FALSE(minixfs::ValidateName(std::string(56, 'x')).ok());
}

}  // namespace
}  // namespace aru::testing
