// Matched by skip/ in .arulintignore: the violation below must never
// be reported because the subtree is never collected.
#include <cstdlib>

namespace fixture {

int Roll() {
  return rand() % 6;
}

}  // namespace fixture
