// Matched by *_generated.cc in .arulintignore: the raw-new below must
// never be reported because the file is never collected.
namespace fixture {

int* Make() {
  return new int(7);
}

}  // namespace fixture
