// The only file CollectFiles may return from this tree. Clean.
namespace fixture {

int Keep() {
  return 1;
}

}  // namespace fixture
