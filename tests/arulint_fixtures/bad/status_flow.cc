// Seeded-violation fixture for arulint_test: Status values that leak —
// a (void)-discard with no justification, a bare-statement call whose
// Status is dropped, and a Status local that is never examined.
namespace fixture {

struct Status {
  bool ok() const { return true; }
};

Status Flush();

void Close() {
  int x = 0;
  x = x + 1;
  (void)x;

  (void)Flush();
}

void Drop() {
  Flush();
}

void Unused() {
  Status s = Flush();
}

}  // namespace fixture
