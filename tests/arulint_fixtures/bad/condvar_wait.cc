// Seeded violations for the condvar-wait rule: a CondVar::Wait must
// use the predicate overload or sit in a loop re-testing guarded
// state (spurious wakeups), every waiter of one CondVar must pair it
// with the same mutex, and a notify holding only mutexes no waiter
// uses hands off the guarded state unsynchronized.
//
// Golden (rule, line) expectations live in tests/arulint_test.cc
// (FixtureTest.CondvarWait); keep them in sync when editing.
class Mutex {
 public:
  explicit Mutex(const char* site);
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
};

class CondVar {
 public:
  void Wait(Mutex& mu);
  void NotifyAll();
};

namespace fixture_cv {

class WaitState {
 public:
  void WaitOnce() {
    MutexLock lock(mu_);
    // Single-shot wait, no predicate, no loop: a spurious wakeup
    // returns before the guarded condition holds.
    cv_.Wait(mu_);
  }

  void WaitElsewhere() {
    MutexLock lock(other_mu_);
    while (!done_) {
      // In a loop (so no spurious-wakeup finding), but pairs cv_ with
      // a different mutex than WaitOnce: both wait sites are flagged.
      cv_.Wait(other_mu_);
    }
  }

  void Signal() {
    MutexLock lock(aux_mu_);
    done_ = true;
    // Notifying while holding only a mutex no waiter of cv_ uses: the
    // done_ handoff is unsynchronized with the waiters.
    cv_.NotifyAll();
  }

 private:
  Mutex mu_{"fixture_cv_mu"};
  Mutex other_mu_{"fixture_cv_other"};
  Mutex aux_mu_{"fixture_cv_aux"};
  CondVar cv_;
  bool done_ = false;
};

}  // namespace fixture_cv
