// Seeded violations for the named-lock rule: locks constructed
// without a site-name string cannot attribute contended waits to the
// per-site aru_lock_contended_total_* / aru_lock_wait_us_* metrics.
//
// Golden (rule, line) expectations live in tests/arulint_test.cc
// (FixtureTest.UnnamedLocks); keep them in sync when editing.
class Mutex {
 public:
  Mutex() = default;
  explicit Mutex(const char* site);
};
class SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(const char* site);
};

class Pipeline {
 public:
  void Touch(Mutex& external, const SharedMutex* alias);

 private:
  Mutex mu_;                       // line 23: no site at all
  SharedMutex rw_;                 // line 24: no site at all
  Mutex flush_mu_{};               // line 25: initializer, but no string
  Mutex named_{"good_site"};       // named: quiet
  SharedMutex wide_{"good_wide"};  // named: quiet
  // arulint: allow(named-lock) scratch lock in a test double.
  Mutex allowed_;                  // suppressed: quiet
};

void Pipeline::Touch(Mutex& external, const SharedMutex* alias) {
  (void)external;  // Discarded: parameters only exercise type mentions.
  (void)alias;     // Discarded: parameters only exercise type mentions.
}
