// Seeded-violation fixture for arulint_test: pinned on-disk structs
// whose fields are not fixed-width or carry implicit padding.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace fixture {

struct BadFields {
  bool flag;
  std::uint32_t count;
  std::size_t bytes;
  char* name;
};
static_assert(std::is_trivially_copyable_v<BadFields>);
static_assert(sizeof(BadFields) == 24);

struct Padded {
  std::uint16_t tag;
  std::uint64_t value;
};
static_assert(std::is_trivially_copyable_v<Padded>);
static_assert(sizeof(Padded) == 16);

struct TailPadded {
  std::uint64_t base;
  std::uint32_t extra;
};
static_assert(std::is_trivially_copyable_v<TailPadded>);
static_assert(sizeof(TailPadded) == 16);

}  // namespace fixture
