// Seeded violations for the atomic-order rule: every std::atomic must
// declare its memory-order discipline (ARU_ATOMIC_COUNTER /
// ARU_ATOMIC_PUBLISHES), and memory_order_relaxed operations on a
// publishing atomic are flagged — the data the value stands for may
// not be visible when the value is.
//
// Golden (rule, line) expectations live in tests/arulint_test.cc
// (FixtureTest.AtomicOrder); keep them in sync when editing.
#include <atomic>

namespace fixture_atomic {

class PublishBox {
 public:
  void Publish(int* payload) {
    data_ = payload;
    // Relaxed store on a publishing atomic: the reader can observe
    // ready_ == true before data_ is visible.
    ready_.store(true, std::memory_order_relaxed);
  }

  int* Get() {
    // Relaxed load on a publishing atomic: same race, reader side.
    if (ready_.load(std::memory_order_relaxed)) return data_;
    return nullptr;
  }

  // Relaxed traffic on an annotated counter is the whole point of the
  // counter vocabulary: not flagged.
  void Touch() { hits_.fetch_add(1, std::memory_order_relaxed); }

 private:
  int* data_ = nullptr;
  std::atomic<bool> ready_ ARU_ATOMIC_PUBLISHES(data_block){false};
  std::atomic<unsigned> hits_ ARU_ATOMIC_COUNTER{0};
  // Unannotated: the discipline readers rely on is undeclared.
  std::atomic<unsigned> untracked_{0};
};

}  // namespace fixture_atomic
