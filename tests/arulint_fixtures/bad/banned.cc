// Seeded-violation fixture for arulint_test: nondeterminism and raw
// ownership, one violation per statement.
#include <cstdlib>
#include <ctime>

namespace fixture {

struct Widget {
  int v = 0;
};

int Roll() {
  return rand() % 6;
}

long Stamp() {
  return static_cast<long>(time(nullptr));
}

Widget* Make() {
  return new Widget();
}

}  // namespace fixture
