// Seeded-violation fixture for arulint_test: RecordType enumerators
// with no replay arm. kDelta is encoded but never decoded (its records
// reach the segment and are skipped on recovery); kGamma is neither
// encoded nor decoded (a dead record type the format still reserves).
// tests/arulint_test.cc pins the exact (rule, line) findings.
#include "util/protocol_annotations.h"

namespace fixture_records {

enum class RecordType {
  kAlpha = 1,
  kDelta = 2,
  kGamma = 3,
};

class RecordSink {
 public:
  void Put(unsigned value);
};

void EncodeOne(RecordType type, RecordSink* out) ARU_ENCODES_RECORD;
void DecodeOne(unsigned value) ARU_DECODES_RECORD;
void AppendOne(RecordSink* out) ARU_APPENDS_SUMMARY;
void ApplyAlpha();

void EncodeOne(RecordType type, RecordSink* out) {
  if (type == RecordType::kAlpha) {
    out->Put(1);
  }
  if (type == RecordType::kDelta) {
    out->Put(2);
  }
}

void DecodeOne(unsigned value) {
  if (value == static_cast<unsigned>(RecordType::kAlpha)) {
    ApplyAlpha();
  }
}

void AppendOne(RecordSink* out) {
  EncodeOne(RecordType::kAlpha, out);
}

}  // namespace fixture_records
