// Seeded-violation fixture for arulint_test: shard-lock ordering.
// A sharded table keeps one mutex per shard in an array; nested
// acquisitions of two elements are only safe when every thread visits
// them in the same (ascending-index) order. Descending literals and
// runtime indices are the two shapes the shard-order rule must flag;
// ascending literals are the sanctioned two-phase promotion shape and
// must stay quiet.
#include <cstddef>

namespace fixture {

class ShardMutex {};

class MutexLock {
 public:
  explicit MutexLock(ShardMutex& mu);
};

struct Shard {
  ShardMutex mu;
};

class Table {
 public:
  void Ascending();
  void Descending();
  void Runtime(std::size_t i, std::size_t j);

 private:
  Shard shards_[8];
};

// Ascending literal indices: provably deadlock-free, not flagged.
void Table::Ascending() {
  MutexLock low(shards_[1].mu);
  MutexLock high(shards_[3].mu);
}

// Descending literals on a pair no other body touches: lock-order's
// graph has no reverse edge to close a cycle with, but two threads
// disagreeing on visit order across ANY element pair deadlock.
void Table::Descending() {
  MutexLock high(shards_[5].mu);
  MutexLock low(shards_[2].mu);
}

// Runtime indices: nothing proves i < j, and two calls with swapped
// arguments are the AB/BA pair.
void Table::Runtime(std::size_t i, std::size_t j) {
  MutexLock first(shards_[i].mu);
  MutexLock second(shards_[j].mu);
}

}  // namespace fixture
