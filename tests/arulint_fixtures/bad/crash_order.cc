// Seeded-violation fixture for arulint_test: table mutations that run
// ahead of the log. The write-ordering protocol requires the summary /
// commit record to reach the segment before the block-number map
// changes; recovery replays the log, so state the log never saw cannot
// be rebuilt.
#include <cstdint>

#include "util/protocol_annotations.h"

namespace fixture {

struct Status {
  bool ok() const { return true; }
};

class BlockMap {
 public:
  void Set(std::uint64_t key, std::uint64_t value);
  void Erase(std::uint64_t key);
};

class Volume {
 public:
  Status AppendSummary() ARU_APPENDS_SUMMARY;
  void Promote(std::uint64_t id) ARU_MUTATES_TABLES;

  void MutateBeforeAppend(std::uint64_t id);
  void MutateAfterAppend(std::uint64_t id);
  void UnorderedCaller(std::uint64_t id);
  void OrderedCaller(std::uint64_t id);

 private:
  BlockMap block_map_;
};

void Volume::Promote(std::uint64_t id) {
  // Exempt: ARU_MUTATES_TABLES moves the obligation to the callers.
  block_map_.Set(id, id);
}

void Volume::MutateBeforeAppend(std::uint64_t id) {
  block_map_.Set(id, id);
  Status s = AppendSummary();
  if (!s.ok()) {
    block_map_.Erase(id);
  }
}

void Volume::MutateAfterAppend(std::uint64_t id) {
  Status s = AppendSummary();
  if (!s.ok()) {
    return;
  }
  block_map_.Set(id, id);
}

void Volume::UnorderedCaller(std::uint64_t id) {
  Promote(id);
}

void Volume::OrderedCaller(std::uint64_t id) {
  Status s = AppendSummary();
  if (!s.ok()) {
    return;
  }
  Promote(id);
}

}  // namespace fixture
