// Seeded violations for the thread-lifecycle rule: a class owning a
// std::thread must reach a join on its destructor path — destroying a
// joinable std::thread calls std::terminate, and a detached worker
// keeps touching freed members.
//
// Golden (rule, line) expectations live in tests/arulint_test.cc
// (FixtureTest.ThreadLifecycle); keep them in sync when editing.
#include <thread>

namespace fixture_thread {

class NoJoinWorker {
 public:
  ~NoJoinWorker() { count_ = 0; }  // tidies a field, never joins
  void Start();

 private:
  std::thread worker_;
  int count_ = 0;
};

class NoDtorWorker {
 public:
  void Start();

 private:
  // No destructor anywhere in the class: the implicit one destroys a
  // possibly-joinable thread.
  std::thread runner_;
};

// The compliant shape: the destructor reaches a join through Stop().
// Must NOT be flagged.
class JoiningWorker {
 public:
  ~JoiningWorker() { Stop(); }
  void Stop() {
    if (loop_.joinable()) loop_.join();
  }

 private:
  std::thread loop_;
};

}  // namespace fixture_thread
