// Seeded-violation fixture for arulint_test: an assert() in a
// recovery-path file. Recovery digests disk-derived data, so the real
// code must return StatusCode::kCorruption instead.
#include <cassert>
#include <cstdint>

namespace fixture {

void ReplaySegment(const std::uint8_t* bytes, std::uint64_t magic) {
  assert(bytes != nullptr);
  (void)magic;  // Discarded: fixture stub, the value is unused here.
}

}  // namespace fixture
