// Seeded-violation fixture for arulint_test: AB–BA lock acquisition.
// Two functions take the same pair of mutexes in opposite orders; two
// threads running them concurrently deadlock.
#include "util/mutex.h"

namespace fixture {

class LockMutex {};

class MutexLock {
 public:
  explicit MutexLock(LockMutex& mu);
};

class Pair {
 public:
  void Forward();
  void Backward();

 private:
  LockMutex a_;
  LockMutex b_;
};

void Pair::Forward() {
  MutexLock hold_a(a_);
  MutexLock hold_b(b_);
}

void Pair::Backward() {
  MutexLock hold_b(b_);
  MutexLock hold_a(a_);
}

}  // namespace fixture
