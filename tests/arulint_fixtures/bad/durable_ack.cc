// Seeded-violation fixture for arulint_test: a commit path that gates
// on durable_commits, computes the durable target under the gate, and
// then acknowledges the commit without ever waiting on the durable-LSN
// horizon. The clean variant waits on the gated target before acking.
// tests/arulint_test.cc pins the exact (rule, line) finding.
#include <cstdint>

namespace fixture_durable {

struct CommitOptions {
  bool durable_commits = false;
};

class CommitCounter {
 public:
  void Increment();
};

struct CommitMetrics {
  CommitCounter* arus_committed = nullptr;
};

class DurablePipeline {
 public:
  void WaitDurable(std::uint64_t target);
};

class Committer {
 public:
  void EndWithoutWait();
  void EndWithWait();

 private:
  CommitOptions options_;
  CommitMetrics metrics_;
  DurablePipeline pipeline_;
  std::uint64_t last_appended_ = 0;
};

void Committer::EndWithoutWait() {
  std::uint64_t target = 0;
  if (options_.durable_commits) {
    target = last_appended_;
  }
  metrics_.arus_committed->Increment();
}

void Committer::EndWithWait() {
  std::uint64_t target = 0;
  if (options_.durable_commits) {
    target = last_appended_;
  }
  if (target != 0) {
    pipeline_.WaitDurable(target);
  }
  metrics_.arus_committed->Increment();
}

}  // namespace fixture_durable
