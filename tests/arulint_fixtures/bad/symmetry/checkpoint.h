// Seeded-violation fixture for arulint_test: a pinned on-disk record
// struct whose codec is asymmetric. The encoder persists `crc` but no
// decoder ever reads it back (dead bytes on replay), and the decoder
// reads `epoch` that no encoder writes (replay consumes bytes nothing
// persists). tests/arulint_test.cc pins the exact (rule, line)
// findings.
#pragma once

#include <cstdint>
#include <type_traits>

#include "util/protocol_annotations.h"

namespace fixture_symmetry {

struct MiniCheckpoint {
  std::uint64_t stamp = 0;
  std::uint64_t root = 0;
  std::uint64_t crc = 0;
  std::uint64_t epoch = 0;
};
static_assert(std::is_trivially_copyable_v<MiniCheckpoint>);
static_assert(sizeof(MiniCheckpoint) == 32);

class WordBuf {
 public:
  void PutU64(std::uint64_t value);
  std::uint64_t GetU64();
};

void EncodeMini(const MiniCheckpoint& data, WordBuf* out) ARU_ENCODES_RECORD;
void DecodeMini(WordBuf* in, MiniCheckpoint* out) ARU_DECODES_RECORD;

inline void EncodeMini(const MiniCheckpoint& data, WordBuf* out) {
  out->PutU64(data.stamp);
  out->PutU64(data.root);
  out->PutU64(data.crc);
}

inline void DecodeMini(WordBuf* in, MiniCheckpoint* out) {
  out->stamp = in->GetU64();
  out->root = in->GetU64();
  out->epoch = in->GetU64();
}

}  // namespace fixture_symmetry
