// Seeded-violation fixture for arulint_test: the write-behind hand-off.
// With an asynchronous seal the summary/commit append obligation moves
// to the pipeline enqueue site (ARU_APPENDS_SUMMARY on Enqueue), and
// the crash-order rule must still fire across the thread boundary:
// promoting tables before the segment is even handed to the flusher,
// or mutating tables from the flusher body itself (which never
// appends), both let recovery see table state the log never recorded.
#include <cstdint>

#include "util/protocol_annotations.h"

namespace fixture {

struct Status {
  bool ok() const { return true; }
};

class BlockMap {
 public:
  void Set(std::uint64_t key, std::uint64_t value);
  void Erase(std::uint64_t key);
};

class Pipeline {
 public:
  // The seal hands the filled segment buffer to the flusher here; the
  // append obligation lives at the enqueue site, not the device write.
  Status Enqueue() ARU_APPENDS_SUMMARY;
};

class Volume {
 public:
  void Promote(std::uint64_t id) ARU_MUTATES_TABLES;

  void SealAndPromote(std::uint64_t id);
  void PromoteBeforeHandOff(std::uint64_t id);
  void FlusherBodyTouchesTables(std::uint64_t id);

 private:
  Pipeline pipeline_;
  BlockMap block_map_;
};

void Volume::Promote(std::uint64_t id) {
  // Exempt: ARU_MUTATES_TABLES moves the obligation to the callers.
  block_map_.Set(id, id);
}

void Volume::SealAndPromote(std::uint64_t id) {
  Status s = pipeline_.Enqueue();
  if (!s.ok()) {
    return;
  }
  Promote(id);
}

void Volume::PromoteBeforeHandOff(std::uint64_t id) {
  Promote(id);
  Status s = pipeline_.Enqueue();
  if (!s.ok()) {
    block_map_.Erase(id);
  }
}

void Volume::FlusherBodyTouchesTables(std::uint64_t id) {
  // The flusher only writes buffers to the device; it must never
  // publish table state (nothing here ever appends).
  block_map_.Set(id, id);
}

}  // namespace fixture
