// Seeded violations for the pin-protocol rule: a SlotPins::Pin must
// be released on every path out of the body (a pin leaked on an early
// return blocks slot reclamation forever), and device bytes read with
// no lock held must pass a generation re-validation before they are
// cached (the slot may have been freed and rewritten meanwhile).
//
// Golden (rule, line) expectations live in tests/arulint_test.cc
// (FixtureTest.PinLeak); keep them in sync when editing.
namespace fixture_pin {

class SlotPins {
 public:
  void Pin(unsigned slot);
  void Unpin(unsigned slot);
  unsigned long generation(unsigned slot) const;
};

class StubDevice {
 public:
  int Read(unsigned slot);
};

class StubCache {
 public:
  void Insert(unsigned slot);
};

class PinnedReader {
 public:
  int ReadOne(unsigned slot) {
    slot_pins_.Pin(slot);
    if (slot > 100) {
      // Early error return without Unpin: the pin leaks.
      return -1;
    }
    slot_pins_.Unpin(slot);
    return 0;
  }

  int CacheStale(unsigned slot) {
    slot_pins_.Pin(slot);
    dev_.Read(slot);
    // Cached without re-checking the generation: a concurrent
    // free/reuse may have rewritten the slot under the read.
    cache_.Insert(slot);
    slot_pins_.Unpin(slot);
    return 0;
  }

  // The compliant shape: generation re-validated in the branch
  // condition before the insert, pin released on both paths. Must NOT
  // be flagged.
  int CacheChecked(unsigned slot, unsigned long gen) {
    slot_pins_.Pin(slot);
    dev_.Read(slot);
    if (slot_pins_.generation(slot) == gen) {
      cache_.Insert(slot);
    }
    slot_pins_.Unpin(slot);
    return 0;
  }

 private:
  SlotPins slot_pins_;
  StubDevice dev_;
  StubCache cache_;
};

}  // namespace fixture_pin
