// Seeded-violation fixture for arulint_test: lock upgrade under a
// shared hold. Taking the same SharedMutex exclusively while already
// holding it in reader mode self-deadlocks — SharedMutex has no
// upgrade path, so the writer acquisition waits forever on our own
// reader hold. A shared re-acquire under a shared hold is benign and
// must NOT be flagged (Nested below pins that).
#include "util/mutex.h"

namespace fixture {

class UpgradeMutex {};

class ReaderMutexLock {
 public:
  explicit ReaderMutexLock(UpgradeMutex& mu);
};

class WriterMutexLock {
 public:
  explicit WriterMutexLock(UpgradeMutex& mu);
};

class Table {
 public:
  void Upgrade();
  void Nested();

 private:
  UpgradeMutex mu_;
};

void Table::Upgrade() {
  ReaderMutexLock read_lock(mu_);
  WriterMutexLock write_lock(mu_);  // upgrade: self-deadlock
}

void Table::Nested() {
  ReaderMutexLock outer(mu_);
  ReaderMutexLock inner(mu_);  // shared-after-shared: not flagged
}

}  // namespace fixture
