// Seeded-violation fixture for arulint_test: an on-disk struct in a
// format header with no trivially-copyable / sizeof pin.
#pragma once

#include <cstdint>

namespace fixture {

struct UnpinnedHeader {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t crc;
};

struct PinnedRecord {
  std::uint64_t lsn;
  std::uint64_t id;
};
static_assert(sizeof(PinnedRecord) == 16);
// PinnedRecord is still missing the trivially-copyable half of the pin,
// so arulint must flag it too (a size pin alone does not prove the
// bytes can be memcpy'd).

}  // namespace fixture
