// Seeded-violation fixture for arulint_test: a (void)-discarded call
// with no justification comment near it.
namespace fixture {

int Flush();

void Close() {
  int x = 0;
  x = x + 1;
  (void)x;

  (void)Flush();
}

}  // namespace fixture
