// Seeded-violation fixture for arulint_test: an incremental-checkpoint
// delta vocabulary whose decoder lost an arm. kBlockSet round-trips
// and must stay quiet; kListErase is encoded and appended but never
// decoded — recovery would skip the record and resurrect erased
// list-table entries. tests/arulint_test.cc pins the (rule, line).
#include "util/protocol_annotations.h"

namespace fixture_ckpt_delta {

enum class RecordType {
  kBlockSet = 1,
  kListErase = 2,
};

class DeltaSink {
 public:
  void Put(unsigned value);
};

void EncodeDelta(RecordType type, DeltaSink* out) ARU_ENCODES_RECORD;
void DecodeDelta(unsigned value) ARU_DECODES_RECORD;
void AppendDelta(DeltaSink* out) ARU_APPENDS_SUMMARY;
void ApplyBlockSet();

void EncodeDelta(RecordType type, DeltaSink* out) {
  if (type == RecordType::kBlockSet) {
    out->Put(1);
  }
  if (type == RecordType::kListErase) {
    out->Put(2);
  }
}

void DecodeDelta(unsigned value) {
  if (value == static_cast<unsigned>(RecordType::kBlockSet)) {
    ApplyBlockSet();
  }
}

void AppendDelta(DeltaSink* out) {
  EncodeDelta(RecordType::kBlockSet, out);
}

}  // namespace fixture_ckpt_delta
