// Clean fixture for arulint_test: exercises every pattern the rules
// look for, but only inside comments, strings, or with the sanctioned
// escape hatches. arulint must report zero findings here.
#include <memory>
#include <string>

namespace fixture {

struct Widget {
  int v = 0;
};

int Flush();

// A comment mentioning rand() and time(nullptr) and (void)Flush() and
// `new Widget` must not trip the lexical rules.
void Comments() {
  const std::string s = "rand() time(nullptr) (void)Flush( new Widget";
  (void)s.size();  // Discarded: size only forces the string to exist.
}

void Justified() {
  // Discarded: fixture stub — Flush() cannot fail here.
  (void)Flush();
}

void Suppressed() {
  // arulint: allow(raw-new) exercising the suppression syntax.
  Widget* w = new Widget();
  delete w;
}

std::unique_ptr<Widget> SmartSameLine() {
  return std::unique_ptr<Widget>(new Widget());
}

std::unique_ptr<Widget> SmartWrapped() {
  return std::unique_ptr<Widget>(
      new Widget());
}

}  // namespace fixture
