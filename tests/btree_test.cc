// B+tree on LD: functional tests, structural validation after heavy
// churn, reopen, and — the point of building it — crash atomicity of
// multi-block structural updates (splits, root growth/collapse).
#include <gtest/gtest.h>

#include <map>

#include "btree/btree.h"
#include "tests/test_util.h"

namespace aru::testing {
namespace {

using btree::BTree;

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest() : t_(TestDisk::SmallOptions(), /*sectors=*/131072) {
    auto tree = BTree::Create(*t_.disk);
    EXPECT_OK(tree.status());
    tree_ = std::move(tree).value();
  }

  TestDisk t_;
  std::unique_ptr<BTree> tree_;
};

TEST_F(BTreeTest, EmptyTree) {
  EXPECT_EQ(tree_->Get(1).status().code(), StatusCode::kNotFound);
  ASSERT_OK(tree_->Validate());
  ASSERT_OK_AND_ASSIGN(const auto stats, tree_->Stats());
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.height, 1u);
  EXPECT_EQ(stats.nodes, 1u);
}

TEST_F(BTreeTest, PutGetSingle) {
  ASSERT_OK(tree_->Put(42, 4200));
  ASSERT_OK_AND_ASSIGN(const auto value, tree_->Get(42));
  EXPECT_EQ(value, 4200u);
  ASSERT_OK(tree_->Validate());
}

TEST_F(BTreeTest, OverwriteKeepsSingleEntry) {
  ASSERT_OK(tree_->Put(7, 1));
  ASSERT_OK(tree_->Put(7, 2));
  ASSERT_OK_AND_ASSIGN(const auto value, tree_->Get(7));
  EXPECT_EQ(value, 2u);
  ASSERT_OK_AND_ASSIGN(const auto stats, tree_->Stats());
  EXPECT_EQ(stats.entries, 1u);
}

TEST_F(BTreeTest, SequentialInsertSplitsAndStaysValid) {
  constexpr std::uint64_t kKeys = 2000;  // forces several splits (254/node)
  for (std::uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_OK(tree_->Put(k, k * 10));
  }
  ASSERT_OK(tree_->Validate());
  ASSERT_OK_AND_ASSIGN(const auto stats, tree_->Stats());
  EXPECT_EQ(stats.entries, kKeys);
  EXPECT_GE(stats.height, 2u);
  EXPECT_GT(stats.splits, 0u);
  for (std::uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_OK_AND_ASSIGN(const auto value, tree_->Get(k));
    ASSERT_EQ(value, k * 10);
  }
}

TEST_F(BTreeTest, RandomChurnMatchesStdMap) {
  Rng rng(77);
  std::map<std::uint64_t, std::uint64_t> model;
  for (int op = 0; op < 6000; ++op) {
    const std::uint64_t key = rng.Range(1, 900);
    if (rng.Chance(2, 3)) {
      const std::uint64_t value = rng.Next();
      ASSERT_OK(tree_->Put(key, value));
      model[key] = value;
    } else {
      const Status removed = tree_->Remove(key);
      ASSERT_EQ(removed.ok(), model.erase(key) == 1)
          << "key " << key << ": " << removed.ToString();
    }
  }
  ASSERT_OK(tree_->Validate());
  ASSERT_OK_AND_ASSIGN(const auto stats, tree_->Stats());
  EXPECT_EQ(stats.entries, model.size());
  for (const auto& [key, value] : model) {
    ASSERT_OK_AND_ASSIGN(const auto got, tree_->Get(key));
    ASSERT_EQ(got, value) << "key " << key;
  }
  ASSERT_OK(t_.disk->CheckConsistency());
}

TEST_F(BTreeTest, RemoveEverythingCollapsesTree) {
  for (std::uint64_t k = 1; k <= 1500; ++k) {
    ASSERT_OK(tree_->Put(k, k));
  }
  for (std::uint64_t k = 1; k <= 1500; ++k) {
    ASSERT_OK(tree_->Remove(k));
  }
  ASSERT_OK(tree_->Validate());
  ASSERT_OK_AND_ASSIGN(const auto stats, tree_->Stats());
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.height, 1u);
  EXPECT_EQ(stats.nodes, 1u);  // everything but the root leaf was freed
  EXPECT_GT(stats.frees, 0u);
}

TEST_F(BTreeTest, ScanRange) {
  for (std::uint64_t k = 0; k < 1000; k += 2) {  // even keys only
    ASSERT_OK(tree_->Put(k, k + 1));
  }
  std::vector<std::uint64_t> seen;
  ASSERT_OK(tree_->Scan(100, 200, [&seen](std::uint64_t key,
                                          std::uint64_t value) {
    EXPECT_EQ(value, key + 1);
    seen.push_back(key);
  }));
  ASSERT_EQ(seen.size(), 51u);  // 100, 102, ..., 200
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(seen.front(), 100u);
  EXPECT_EQ(seen.back(), 200u);
}

TEST_F(BTreeTest, ReopenFindsEverything) {
  for (std::uint64_t k = 1; k <= 600; ++k) {
    ASSERT_OK(tree_->Put(k, k * 3));
  }
  const ld::ListId list = tree_->list();
  ASSERT_OK(t_.disk->Flush());
  tree_.reset();

  ASSERT_OK_AND_ASSIGN(tree_, BTree::Open(*t_.disk, list));
  ASSERT_OK(tree_->Validate());
  ASSERT_OK_AND_ASSIGN(const auto value, tree_->Get(500));
  EXPECT_EQ(value, 1500u);
}

TEST_F(BTreeTest, SplitsAreCrashAtomic) {
  // Fill a leaf to the brink, flush, then insert the key that forces a
  // split — and crash before the commit can reach disk. Recovery must
  // restore the pre-split tree exactly.
  constexpr std::uint64_t kBrink = 254;  // node capacity
  for (std::uint64_t k = 1; k <= kBrink; ++k) {
    ASSERT_OK(tree_->Put(k, k));
  }
  ASSERT_OK(t_.disk->Flush());
  ASSERT_OK_AND_ASSIGN(const auto before, tree_->Stats());
  ASSERT_EQ(before.height, 1u);

  ASSERT_OK(tree_->Put(kBrink + 1, 0));  // split + new root, unflushed
  ASSERT_OK_AND_ASSIGN(const auto after, tree_->Stats());
  EXPECT_EQ(after.height, 2u);

  const ld::ListId list = tree_->list();
  tree_.reset();
  t_.CrashAndRecover();

  ASSERT_OK_AND_ASSIGN(tree_, BTree::Open(*t_.disk, list));
  ASSERT_OK(tree_->Validate());
  ASSERT_OK_AND_ASSIGN(const auto recovered, tree_->Stats());
  // All-or-nothing: the unflushed split vanished entirely — height,
  // node count and entries are exactly pre-split.
  EXPECT_EQ(recovered.height, 1u);
  EXPECT_EQ(recovered.entries, kBrink);
  EXPECT_EQ(recovered.nodes, before.nodes);
  for (std::uint64_t k = 1; k <= kBrink; ++k) {
    ASSERT_OK(tree_->Get(k).status());
  }
  EXPECT_EQ(tree_->Get(kBrink + 1).status().code(), StatusCode::kNotFound);
  // And the tree keeps working: redo the split.
  ASSERT_OK(tree_->Put(kBrink + 1, 0));
  ASSERT_OK(tree_->Validate());
}

TEST_F(BTreeTest, CrashSweepNeverLeavesHalfASplit) {
  // Random inserts/removes with periodic flushes; crash at random op
  // boundaries; after recovery the tree must always validate.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    TestDisk t(TestDisk::SmallOptions(), /*sectors=*/131072);
    ASSERT_OK_AND_ASSIGN(auto tree, BTree::Create(*t.disk));
    const ld::ListId list = tree->list();
    Rng rng(seed);
    const std::uint64_t ops = rng.Range(300, 1200);
    for (std::uint64_t op = 0; op < ops; ++op) {
      const std::uint64_t key = rng.Range(1, 500);
      if (rng.Chance(3, 4)) {
        ASSERT_OK(tree->Put(key, op));
      } else {
        (void)tree->Remove(key);
      }
      if (rng.Chance(1, 50)) ASSERT_OK(t.disk->Flush());
    }
    tree.reset();
    t.CrashAndRecover();
    ASSERT_OK_AND_ASSIGN(tree, BTree::Open(*t.disk, list));
    ASSERT_OK(tree->Validate());
    ASSERT_OK(t.disk->CheckConsistency());
  }
}

}  // namespace
}  // namespace aru::testing
