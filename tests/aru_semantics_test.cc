// Semantics of concurrent atomic recovery units (paper §3): shadow
// isolation (Read option 3), commit-time visibility, serialization by
// EndARU time, immediately-committed allocation, and the AbortARU
// extension.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace aru::testing {
namespace {

using ld::AruId;
using ld::BlockId;
using ld::kListHead;
using ld::kNoAru;
using ld::ListId;

class AruSemanticsTest : public ::testing::Test {
 protected:
  AruSemanticsTest() : t_() {}

  // A committed single-block list with known contents.
  void MakeBlock(ListId* list, BlockId* block, std::uint64_t seed) {
    ASSERT_OK_AND_ASSIGN(*list, t_.disk->NewList(kNoAru));
    ASSERT_OK_AND_ASSIGN(*block, t_.disk->NewBlock(*list, kListHead, kNoAru));
    ASSERT_OK(t_.disk->Write(*block, TestPattern(Bs(), seed), kNoAru));
  }

  std::uint32_t Bs() const { return t_.disk->block_size(); }

  Bytes ReadBlock(BlockId block, AruId aru) {
    Bytes out(Bs());
    EXPECT_OK(t_.disk->Read(block, out, aru));
    return out;
  }

  TestDisk t_;
};

TEST_F(AruSemanticsTest, WriteInAruInvisibleToSimpleReads) {
  ListId list;
  BlockId block;
  MakeBlock(&list, &block, 1);

  ASSERT_OK_AND_ASSIGN(const AruId aru, t_.disk->BeginARU());
  ASSERT_OK(t_.disk->Write(block, TestPattern(Bs(), 2), aru));

  // The shadow version is local to the ARU (Read option 3).
  EXPECT_EQ(ReadBlock(block, kNoAru), TestPattern(Bs(), 1));
  EXPECT_EQ(ReadBlock(block, aru), TestPattern(Bs(), 2));

  ASSERT_OK(t_.disk->EndARU(aru));
  EXPECT_EQ(ReadBlock(block, kNoAru), TestPattern(Bs(), 2));
}

TEST_F(AruSemanticsTest, ShadowStatesOfConcurrentArusAreIsolated) {
  ListId list;
  BlockId block;
  MakeBlock(&list, &block, 1);

  ASSERT_OK_AND_ASSIGN(const AruId a, t_.disk->BeginARU());
  ASSERT_OK_AND_ASSIGN(const AruId b, t_.disk->BeginARU());
  ASSERT_OK(t_.disk->Write(block, TestPattern(Bs(), 10), a));

  EXPECT_EQ(ReadBlock(block, a), TestPattern(Bs(), 10));
  EXPECT_EQ(ReadBlock(block, b), TestPattern(Bs(), 1));  // not a's shadow
  EXPECT_EQ(ReadBlock(block, kNoAru), TestPattern(Bs(), 1));

  ASSERT_OK(t_.disk->EndARU(a));
  ASSERT_OK(t_.disk->EndARU(b));
}

TEST_F(AruSemanticsTest, LaterCommitWinsWhenArusWriteSameBlock) {
  ListId list;
  BlockId block;
  MakeBlock(&list, &block, 1);

  ASSERT_OK_AND_ASSIGN(const AruId a, t_.disk->BeginARU());
  ASSERT_OK_AND_ASSIGN(const AruId b, t_.disk->BeginARU());
  ASSERT_OK(t_.disk->Write(block, TestPattern(Bs(), 10), a));
  ASSERT_OK(t_.disk->Write(block, TestPattern(Bs(), 20), b));

  // ARUs are serialized by the time of the EndARU operation: b commits
  // first, then a — a's version is the most recent.
  ASSERT_OK(t_.disk->EndARU(b));
  EXPECT_EQ(ReadBlock(block, kNoAru), TestPattern(Bs(), 20));
  ASSERT_OK(t_.disk->EndARU(a));
  EXPECT_EQ(ReadBlock(block, kNoAru), TestPattern(Bs(), 10));
}

TEST_F(AruSemanticsTest, ListOpsInAruInvisibleUntilCommit) {
  ASSERT_OK_AND_ASSIGN(const ListId list, t_.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const AruId aru, t_.disk->BeginARU());
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t_.disk->NewBlock(list, kListHead, aru));

  // Simple readers see an empty list; the ARU sees its insertion.
  ASSERT_OK_AND_ASSIGN(const auto outside, t_.disk->ListBlocks(list, kNoAru));
  EXPECT_TRUE(outside.empty());
  ASSERT_OK_AND_ASSIGN(const auto inside, t_.disk->ListBlocks(list, aru));
  ASSERT_EQ(inside.size(), 1u);
  EXPECT_EQ(inside[0], block);

  ASSERT_OK(t_.disk->EndARU(aru));
  ASSERT_OK_AND_ASSIGN(const auto after, t_.disk->ListBlocks(list, kNoAru));
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0], block);
}

TEST_F(AruSemanticsTest, AllocationIsCommittedImmediately) {
  ASSERT_OK_AND_ASSIGN(const ListId list, t_.disk->NewList(kNoAru));
  const std::uint64_t free_before = t_.disk->free_blocks();

  ASSERT_OK_AND_ASSIGN(const AruId aru, t_.disk->BeginARU());
  ASSERT_OK(t_.disk->NewBlock(list, kListHead, aru).status());

  // Even before the ARU commits, the id is consumed: the allocation is
  // done in the merged stream (paper §3.3).
  EXPECT_EQ(t_.disk->free_blocks(), free_before - 1);
  ASSERT_OK(t_.disk->EndARU(aru));
}

TEST_F(AruSemanticsTest, DeleteListInsideAruIsShadowed) {
  ListId list;
  BlockId block;
  MakeBlock(&list, &block, 1);

  ASSERT_OK_AND_ASSIGN(const AruId aru, t_.disk->BeginARU());
  ASSERT_OK(t_.disk->DeleteList(list, aru));

  // Still visible outside; gone inside.
  ASSERT_OK(t_.disk->ListBlocks(list, kNoAru).status());
  EXPECT_EQ(t_.disk->ListBlocks(list, aru).status().code(),
            StatusCode::kNotFound);
  Bytes scratch(Bs());
  EXPECT_EQ(t_.disk->Read(block, scratch, aru).code(),
            StatusCode::kNotFound);

  ASSERT_OK(t_.disk->EndARU(aru));
  EXPECT_EQ(t_.disk->ListBlocks(list, kNoAru).status().code(),
            StatusCode::kNotFound);
}

TEST_F(AruSemanticsTest, DeleteBlockInsideAruIsShadowed) {
  ASSERT_OK_AND_ASSIGN(const ListId list, t_.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId b1,
                       t_.disk->NewBlock(list, kListHead, kNoAru));
  ASSERT_OK_AND_ASSIGN(const BlockId b2, t_.disk->NewBlock(list, b1, kNoAru));

  ASSERT_OK_AND_ASSIGN(const AruId aru, t_.disk->BeginARU());
  ASSERT_OK(t_.disk->DeleteBlock(b2, aru));

  ASSERT_OK_AND_ASSIGN(const auto outside, t_.disk->ListBlocks(list, kNoAru));
  EXPECT_EQ(outside.size(), 2u);
  ASSERT_OK_AND_ASSIGN(const auto inside, t_.disk->ListBlocks(list, aru));
  EXPECT_EQ(inside.size(), 1u);

  ASSERT_OK(t_.disk->EndARU(aru));
  ASSERT_OK_AND_ASSIGN(const auto after, t_.disk->ListBlocks(list, kNoAru));
  EXPECT_EQ(after.size(), 1u);
}

TEST_F(AruSemanticsTest, AbortDiscardsShadowState) {
  ListId list;
  BlockId block;
  MakeBlock(&list, &block, 1);

  ASSERT_OK_AND_ASSIGN(const AruId aru, t_.disk->BeginARU());
  ASSERT_OK(t_.disk->Write(block, TestPattern(Bs(), 99), aru));
  ASSERT_OK(t_.disk->DeleteList(list, aru));
  ASSERT_OK(t_.disk->AbortARU(aru));

  EXPECT_EQ(ReadBlock(block, kNoAru), TestPattern(Bs(), 1));
  ASSERT_OK(t_.disk->ListBlocks(list, kNoAru).status());
  ASSERT_OK(t_.disk->CheckConsistency());
}

TEST_F(AruSemanticsTest, AbortReclaimsAllocations) {
  ASSERT_OK_AND_ASSIGN(const ListId list, t_.disk->NewList(kNoAru));
  const std::uint64_t free_before = t_.disk->free_blocks();

  ASSERT_OK_AND_ASSIGN(const AruId aru, t_.disk->BeginARU());
  ASSERT_OK(t_.disk->NewBlock(list, kListHead, aru).status());
  ASSERT_OK(t_.disk->NewList(aru).status());
  ASSERT_OK(t_.disk->AbortARU(aru));

  EXPECT_EQ(t_.disk->free_blocks(), free_before);
  ASSERT_OK(t_.disk->CheckConsistency());
}

TEST_F(AruSemanticsTest, EndUnknownAruFails) {
  EXPECT_EQ(t_.disk->EndARU(AruId{1234}).code(), StatusCode::kNotFound);
}

TEST_F(AruSemanticsTest, DoubleEndFails) {
  ASSERT_OK_AND_ASSIGN(const AruId aru, t_.disk->BeginARU());
  ASSERT_OK(t_.disk->EndARU(aru));
  EXPECT_EQ(t_.disk->EndARU(aru).code(), StatusCode::kNotFound);
}

TEST_F(AruSemanticsTest, OperationsOnEndedAruFail) {
  ListId list;
  BlockId block;
  MakeBlock(&list, &block, 1);
  ASSERT_OK_AND_ASSIGN(const AruId aru, t_.disk->BeginARU());
  ASSERT_OK(t_.disk->EndARU(aru));
  EXPECT_EQ(t_.disk->Write(block, TestPattern(Bs(), 2), aru).code(),
            StatusCode::kNotFound);
}

TEST_F(AruSemanticsTest, ManyConcurrentArusOnDistinctLists) {
  constexpr int kArus = 8;
  std::vector<AruId> arus(kArus);
  std::vector<ListId> lists(kArus);
  std::vector<BlockId> blocks(kArus);
  for (int i = 0; i < kArus; ++i) {
    ASSERT_OK_AND_ASSIGN(arus[static_cast<std::size_t>(i)],
                         t_.disk->BeginARU());
  }
  for (int i = 0; i < kArus; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    ASSERT_OK_AND_ASSIGN(lists[idx], t_.disk->NewList(arus[idx]));
    ASSERT_OK_AND_ASSIGN(blocks[idx],
                         t_.disk->NewBlock(lists[idx], kListHead, arus[idx]));
    ASSERT_OK(t_.disk->Write(blocks[idx],
                             TestPattern(Bs(), static_cast<std::uint64_t>(i)),
                             arus[idx]));
  }
  // Commit in reverse order; each ARU's state lands intact.
  for (int i = kArus - 1; i >= 0; --i) {
    ASSERT_OK(t_.disk->EndARU(arus[static_cast<std::size_t>(i)]));
  }
  for (int i = 0; i < kArus; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(ReadBlock(blocks[idx], kNoAru),
              TestPattern(Bs(), static_cast<std::uint64_t>(i)));
  }
  ASSERT_OK(t_.disk->CheckConsistency());
}

TEST_F(AruSemanticsTest, EmptyAruCommitsCheaply) {
  for (int i = 0; i < 1000; ++i) {
    ASSERT_OK_AND_ASSIGN(const AruId aru, t_.disk->BeginARU());
    ASSERT_OK(t_.disk->EndARU(aru));
  }
  EXPECT_EQ(t_.disk->stats().arus_committed, 1000u);
}

// --- Sequential mode (the "old" LLD of Table 1) ---

class SequentialAruTest : public ::testing::Test {
 protected:
  SequentialAruTest() : t_(SequentialOptions()) {}

  static lld::Options SequentialOptions() {
    lld::Options opts = TestDisk::SmallOptions();
    opts.aru_mode = lld::AruMode::kSequential;
    return opts;
  }

  TestDisk t_;
};

TEST_F(SequentialAruTest, OnlyOneAruAtATime) {
  ASSERT_OK_AND_ASSIGN(const AruId aru, t_.disk->BeginARU());
  EXPECT_EQ(t_.disk->BeginARU().status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_OK(t_.disk->EndARU(aru));
  ASSERT_OK(t_.disk->BeginARU().status());
}

TEST_F(SequentialAruTest, AbortUnsupported) {
  ASSERT_OK_AND_ASSIGN(const AruId aru, t_.disk->BeginARU());
  EXPECT_EQ(t_.disk->AbortARU(aru).code(), StatusCode::kFailedPrecondition);
  ASSERT_OK(t_.disk->EndARU(aru));
}

TEST_F(SequentialAruTest, AruOpsApplyDirectly) {
  ASSERT_OK_AND_ASSIGN(const ListId list, t_.disk->NewList(kNoAru));
  ASSERT_OK_AND_ASSIGN(const AruId aru, t_.disk->BeginARU());
  ASSERT_OK_AND_ASSIGN(const BlockId block,
                       t_.disk->NewBlock(list, kListHead, aru));
  // No shadow isolation in the old prototype: visible right away.
  ASSERT_OK_AND_ASSIGN(const auto blocks, t_.disk->ListBlocks(list, kNoAru));
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], block);
  ASSERT_OK(t_.disk->EndARU(aru));
  ASSERT_OK(t_.disk->CheckConsistency());
}

TEST_F(SequentialAruTest, CreateDeleteCycleStaysConsistent) {
  for (std::uint64_t i = 0; i < 20; ++i) {
    ASSERT_OK_AND_ASSIGN(const AruId aru, t_.disk->BeginARU());
    ASSERT_OK_AND_ASSIGN(const ListId list, t_.disk->NewList(aru));
    ASSERT_OK_AND_ASSIGN(const BlockId block,
                         t_.disk->NewBlock(list, kListHead, aru));
    ASSERT_OK(t_.disk->Write(block,
                             TestPattern(t_.disk->block_size(), i), aru));
    ASSERT_OK(t_.disk->EndARU(aru));

    ASSERT_OK_AND_ASSIGN(const AruId del, t_.disk->BeginARU());
    ASSERT_OK(t_.disk->DeleteList(list, del));
    ASSERT_OK(t_.disk->EndARU(del));
  }
  ASSERT_OK(t_.disk->CheckConsistency());
  EXPECT_EQ(t_.disk->free_blocks(), t_.disk->capacity_blocks());
}

}  // namespace
}  // namespace aru::testing
