// SARIF 2.1.0 output: one run, one reportingDescriptor per distinct
// rule id, one result per finding. Consumed by GitHub code scanning
// (codeql-action/upload-sarif) and archived as a CI artifact.
#include <map>
#include <set>
#include <sstream>

#include "tools/arulint/arulint.h"

namespace aru::arulint {
namespace {

// Minimal JSON string escape (control chars, quote, backslash).
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string_view RuleDescription(std::string_view rule) {
  if (rule == "crash-order") {
    return "Table mutations must be preceded by a summary/commit-record "
           "append (the ARU write-ordering protocol).";
  }
  if (rule == "lock-order") {
    return "The mutex acquisition graph must be acyclic.";
  }
  if (rule == "shard-order") {
    return "Nested acquisitions of one lock array's elements must be "
           "provably ascending by literal index (the sharded-table "
           "two-phase protocol).";
  }
  if (rule == "status-flow") {
    return "Status-returning calls must be returned, checked, or "
           "(void)-discarded with a justification.";
  }
  if (rule == "on-disk-pin") {
    return "On-disk structs must be pinned with trivially-copyable and "
           "sizeof static_asserts.";
  }
  if (rule == "on-disk-field") {
    return "Fields of pinned on-disk structs must be fixed-width with no "
           "implicit padding.";
  }
  if (rule == "banned-call") {
    return "rand()/time(nullptr) are banned; runs must be reproducible.";
  }
  if (rule == "raw-new") {
    return "Raw new is banned outside smart-pointer construction.";
  }
  if (rule == "recovery-assert") {
    return "Recovery paths must surface corruption as Status, not "
           "assert().";
  }
  if (rule == "named-lock") {
    return "Every Mutex/SharedMutex must be constructed with a site-name "
           "string for lock-contention attribution.";
  }
  if (rule == "atomic-order") {
    return "Every std::atomic must carry ARU_ATOMIC_COUNTER or "
           "ARU_ATOMIC_PUBLISHES; relaxed ops on publishing atomics are "
           "flagged.";
  }
  if (rule == "pin-protocol") {
    return "Every SlotPins::Pin must be released on all paths, and "
           "device reads after dropping the lock must re-validate the "
           "slot generation before bytes are cached.";
  }
  if (rule == "condvar-wait") {
    return "CondVar waits must use the predicate overload or sit in a "
           "loop, and every waiter/notifier of a CondVar must agree on "
           "its mutex.";
  }
  if (rule == "thread-lifecycle") {
    return "A class owning a std::thread must join it on every "
           "destructor/Close path.";
  }
  if (rule == "record-coverage") {
    return "Every RecordType enumerator must have an encode arm reachable "
           "from an appender, a decode arm, and a recovery-path apply "
           "site.";
  }
  if (rule == "field-symmetry") {
    return "Every non-reserved field of a pinned record struct written by "
           "the encode path must be read by the decode path, and vice "
           "versa.";
  }
  if (rule == "durable-ack") {
    return "A durable_commits-gated commit ack must be dominated by a "
           "WaitDurable on the durable-LSN horizon.";
  }
  if (rule == "io-error") {
    return "A file handed to the linter could not be read.";
  }
  return "arulint finding.";
}

}  // namespace

std::vector<RuleInfo> RuleCatalog() {
  static const char* kRules[] = {
      "crash-order",   "lock-order",     "shard-order",
      "status-flow",   "on-disk-pin",    "on-disk-field",
      "banned-call",   "raw-new",        "named-lock",
      "recovery-assert", "atomic-order", "pin-protocol",
      "condvar-wait",  "thread-lifecycle", "record-coverage",
      "field-symmetry", "durable-ack",   "io-error",
  };
  std::vector<RuleInfo> out;
  for (const char* rule : kRules) {
    out.push_back({rule, std::string(RuleDescription(rule))});
  }
  return out;
}

std::string SarifReport(const std::vector<Finding>& findings) {
  std::set<std::string> rule_ids;
  for (const Finding& f : findings) rule_ids.insert(f.rule);
  std::map<std::string, std::size_t> rule_index;
  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"arulint\",\n"
     << "          \"informationUri\": "
        "\"docs/STATIC_ANALYSIS.md\",\n"
     << "          \"version\": \"4.0.0\",\n"
     << "          \"rules\": [";
  bool first = true;
  for (const std::string& rule : rule_ids) {
    rule_index.emplace(rule, rule_index.size());
    os << (first ? "\n" : ",\n")
       << "            {\n"
       << "              \"id\": \"" << JsonEscape(rule) << "\",\n"
       << "              \"shortDescription\": { \"text\": \""
       << JsonEscape(RuleDescription(rule)) << "\" }\n"
       << "            }";
    first = false;
  }
  os << "\n          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [";
  first = true;
  for (const Finding& f : findings) {
    os << (first ? "\n" : ",\n")
       << "        {\n"
       << "          \"ruleId\": \"" << JsonEscape(f.rule) << "\",\n"
       << "          \"ruleIndex\": " << rule_index[f.rule] << ",\n"
       << "          \"level\": \"error\",\n"
       << "          \"message\": { \"text\": \"" << JsonEscape(f.message)
       << "\" },\n"
       << "          \"locations\": [\n"
       << "            {\n"
       << "              \"physicalLocation\": {\n"
       << "                \"artifactLocation\": { \"uri\": \""
       << JsonEscape(f.file) << "\" },\n"
       << "                \"region\": { \"startLine\": "
       << (f.line == 0 ? 1 : f.line) << " }\n"
       << "              }\n"
       << "            }\n"
       << "          ]\n"
       << "        }";
    first = false;
  }
  os << "\n      ]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
  return os.str();
}

}  // namespace aru::arulint
