// Tokenizer for the arulint C++-subset front-end.
//
// Operates on *stripped* source (comments/strings already blanked by
// StripCommentsAndStrings, which preserves line structure), so the
// lexer only ever sees code. Preprocessor directives — including
// multi-line macro definitions continued with backslashes — are
// skipped entirely: arulint analyzes the un-preprocessed surface
// syntax, and macro bodies are not part of it. `[[...]]` attribute
// blocks are dropped for the same reason.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace aru::arulint {

struct Token {
  enum class Kind {
    kIdent,  // identifiers and keywords
    kNumber,
    kPunct,  // operators and punctuation, longest-match (e.g. "::")
  };
  Kind kind = Kind::kPunct;
  std::string text;
  std::size_t line = 0;  // 1-based

  bool Is(std::string_view t) const { return text == t; }
  bool IsIdent() const { return kind == Kind::kIdent; }
};

// Tokenizes stripped source. Never fails: unrecognized bytes become
// single-character punctuation tokens.
std::vector<Token> Lex(std::string_view stripped);

// Index of the token matching the opener at `open` ("(", "{", "[", or
// "<" for template argument lists, where ">>" closes two levels), or
// tokens.size() when unbalanced.
std::size_t MatchForward(const std::vector<Token>& tokens, std::size_t open);

}  // namespace aru::arulint
