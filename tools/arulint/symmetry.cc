// v4 recovery-symmetry rules: record-coverage, field-symmetry,
// durable-ack.
//
// All three check the same seam from different directions: what the
// runtime persists (ARU_ENCODES_RECORD functions fed by
// ARU_APPENDS_SUMMARY appenders) must be exactly what recovery can
// consume (ARU_DECODES_RECORD functions and the recovery-path apply
// sites), and a commit must not be acknowledged before the durable-LSN
// horizon covers it. Each check follows the house invariant: every
// approximation under-approximates — a half with no annotated body, an
// unresolved receiver, or an unresolvable call makes the rule quieter,
// never louder.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "tools/arulint/arulint.h"
#include "tools/arulint/lexer.h"
#include "tools/arulint/model.h"
#include "tools/arulint/rules_internal.h"

namespace aru::arulint {
namespace {

// ---------------------------------------------------------------------
// record-coverage.

// Forward closure over call events starting from the annotated
// appenders. Unresolved callees fall back to every qname sharing the
// base name — generous on purpose: over-reaching can only mark more
// encoders as append-fed, which silences findings.
std::set<std::string> ReachableFromAppenders(const Analysis& a) {
  std::map<std::string, std::vector<std::string>> by_base;
  for (const auto& [qname, fns] : a.index.by_qname) {
    by_base[BaseOf(qname)].push_back(qname);
  }
  std::set<std::string> reach = a.index.annotated_appenders;
  bool changed = true;
  for (std::size_t round = 0; changed && round < 64; ++round) {
    changed = false;
    for (const BodySummary& body : a.bodies) {
      if (reach.count(body.fn->qname) == 0) continue;
      for (const BodyEvent& e : body.events) {
        if (e.kind != BodyEvent::Kind::kCall) continue;
        if (!e.callee_qname.empty()) {
          changed |= reach.insert(e.callee_qname).second;
          continue;
        }
        const auto it = by_base.find(e.callee_base);
        if (it == by_base.end()) continue;
        for (const std::string& q : it->second) {
          changed |= reach.insert(q).second;
        }
      }
    }
  }
  return reach;
}

// Enumerator names mentioned as `<enum_name> :: <ident>` inside fn's
// body tokens.
void CollectEnumMentions(const FileModel& m, const FunctionInfo& fn,
                         const std::string& enum_name,
                         std::set<std::string>& out) {
  const std::vector<Token>& t = m.tokens;
  if (t.empty()) return;
  for (std::size_t i = fn.body_begin; i + 2 <= fn.body_end && i + 2 < t.size();
       ++i) {
    if (t[i].IsIdent() && t[i].text == enum_name && t[i + 1].Is("::") &&
        t[i + 2].IsIdent()) {
      out.insert(t[i + 2].text);
    }
  }
}

}  // namespace

void CheckRecordCoverage(const Analysis& a,
                         std::vector<std::vector<Finding>>& per_file) {
  std::vector<const EnumDef*> record_enums;
  for (const EnumDef& d : a.index.enum_defs) {
    if (d.name == "RecordType") record_enums.push_back(&d);
  }
  if (record_enums.empty()) return;

  // The encode half only counts encoders the append path can actually
  // reach; when the project declares no appender at all (single-header
  // lints), every encoder counts.
  std::set<std::string> encoders = a.index.annotated_encoders;
  if (!a.index.annotated_appenders.empty()) {
    const std::set<std::string> reach = ReachableFromAppenders(a);
    std::set<std::string> fed;
    for (const std::string& q : encoders) {
      if (reach.count(q) > 0) fed.insert(q);
    }
    encoders = std::move(fed);
  }

  std::set<std::string> encode_arms;
  std::set<std::string> decode_arms;
  bool encoder_body_seen = false;
  bool decoder_body_seen = false;
  for (const BodySummary& body : a.bodies) {
    if (encoders.count(body.fn->qname) > 0) {
      encoder_body_seen = true;
      CollectEnumMentions(a.models[body.fn->file], *body.fn, "RecordType",
                          encode_arms);
    }
    if (a.index.annotated_decoders.count(body.fn->qname) > 0) {
      decoder_body_seen = true;
      CollectEnumMentions(a.models[body.fn->file], *body.fn, "RecordType",
                          decode_arms);
    }
  }

  // Apply half: the record struct (`kWrite` -> `WriteRecord`) must be
  // named somewhere in a recovery-path file. Checked only when the
  // project holds a recovery-path file AND declares that struct —
  // anything less and the half is silently skipped.
  bool has_recovery_file = false;
  std::set<std::string> recovery_idents;
  std::set<std::string> struct_names;
  for (const FileModel& m : a.models) {
    for (const StructInfo& s : m.structs) struct_names.insert(s.name);
    if (!IsRecoveryPath(m.path)) continue;
    has_recovery_file = true;
    for (const Token& tok : m.tokens) {
      if (tok.IsIdent()) recovery_idents.insert(tok.text);
    }
  }

  for (const EnumDef* d : record_enums) {
    const FileModel& m = a.models[d->file];
    for (const Enumerator& e : d->enumerators) {
      std::vector<std::string> missing;
      if (encoder_body_seen && encode_arms.count(e.name) == 0) {
        missing.push_back(
            "no encode arm in any ARU_ENCODES_RECORD function reachable "
            "from an ARU_APPENDS_SUMMARY appender");
      }
      if (decoder_body_seen && decode_arms.count(e.name) == 0) {
        missing.push_back(
            "no decode arm in any ARU_DECODES_RECORD function");
      }
      if (has_recovery_file && e.name.size() > 1 && e.name[0] == 'k') {
        const std::string record_struct = e.name.substr(1) + "Record";
        if (struct_names.count(record_struct) > 0 &&
            recovery_idents.count(record_struct) == 0) {
          missing.push_back("record struct '" + record_struct +
                            "' is never applied in a recovery-path file");
        }
      }
      if (missing.empty()) continue;
      if (IsAllowed(m.raw, e.line, "record-coverage")) continue;
      std::string msg = "record type '" + e.name + "' cannot be replayed: ";
      for (std::size_t i = 0; i < missing.size(); ++i) {
        if (i > 0) msg += "; ";
        msg += missing[i];
      }
      msg += " (a record recovery cannot decode and apply is lost state "
             "after a crash)";
      per_file[d->file].push_back(
          {m.path, e.line, "record-coverage", std::move(msg)});
    }
  }
}

// ---------------------------------------------------------------------
// field-symmetry.

namespace {

bool IsReservedField(const std::string& name) {
  return name.rfind("reserved", 0) == 0 || name.rfind("pad", 0) == 0 ||
         name.rfind("unused", 0) == 0;
}

}  // namespace

void CheckFieldSymmetry(const Analysis& a,
                        std::vector<std::vector<Finding>>& per_file) {
  // Receiver type -> members accessed inside encoder / decoder bodies,
  // project-wide. Only accesses whose receiver type resolved count, so
  // generic encoders (std::visit lambdas) contribute nothing and their
  // structs are skipped below — quieter, never louder.
  std::map<std::string, std::set<std::string>> encode_access;
  std::map<std::string, std::set<std::string>> decode_access;
  for (const BodySummary& body : a.bodies) {
    const bool is_encoder =
        a.index.annotated_encoders.count(body.fn->qname) > 0;
    const bool is_decoder =
        a.index.annotated_decoders.count(body.fn->qname) > 0;
    if (!is_encoder && !is_decoder) continue;
    for (const MemberAccess& access : body.member_accesses) {
      if (is_encoder) encode_access[access.recv_type].insert(access.member);
      if (is_decoder) decode_access[access.recv_type].insert(access.member);
    }
  }

  for (std::size_t f = 0; f < a.models.size(); ++f) {
    const FileModel& m = a.models[f];
    if (!IsFormatHeader(m.path)) continue;
    const PinIndex pins = CollectPins(m);
    for (const StructInfo& s : m.structs) {
      if (!s.namespace_scope || !s.fields_parsed) continue;
      if (pins.trivially_copyable.count(s.name) == 0 ||
          pins.sizeof_pinned.count(s.name) == 0) {
        continue;  // unpinned: on-disk-pin's business
      }
      // Both halves must touch the type at all; a struct one side never
      // sees is record-coverage's domain, not a per-field asymmetry.
      const auto enc_it = encode_access.find(s.name);
      const auto dec_it = decode_access.find(s.name);
      if (enc_it == encode_access.end() || dec_it == decode_access.end()) {
        continue;
      }
      if (IsAllowed(m.raw, s.line, "field-symmetry")) continue;
      for (const FieldInfo& field : s.fields) {
        if (IsReservedField(field.name)) continue;
        const bool in_enc = enc_it->second.count(field.name) > 0;
        const bool in_dec = dec_it->second.count(field.name) > 0;
        if (in_enc && in_dec) continue;
        if (IsAllowed(m.raw, field.line, "field-symmetry")) continue;
        std::string msg;
        if (in_enc) {
          msg = "field '" + field.name + "' of record struct '" + s.name +
                "' is written by the encode path but never read back by "
                "any ARU_DECODES_RECORD decoder: the persisted bytes are "
                "dead on replay (decode it, or rename it reserved*)";
        } else if (in_dec) {
          msg = "field '" + field.name + "' of record struct '" + s.name +
                "' is read by the decode path but never written by any "
                "ARU_ENCODES_RECORD encoder: replay consumes bytes "
                "nothing persists";
        } else {
          msg = "field '" + field.name + "' of record struct '" + s.name +
                "' is touched by neither the encode nor the decode path "
                "while its siblings are: the on-disk layout and the "
                "codec disagree";
        }
        per_file[f].push_back(
            {m.path, field.line, "field-symmetry", std::move(msg)});
      }
    }
  }
}

// ---------------------------------------------------------------------
// durable-ack.

namespace {

bool IsAckEvent(const BodyEvent& e) {
  return e.kind == BodyEvent::Kind::kCall &&
         e.recv_name == "arus_committed" &&
         (e.callee_base == "Increment" || e.callee_base == "Add");
}

bool IsWaitEvent(const BodyEvent& e) {
  return e.kind == BodyEvent::Kind::kCall && e.callee_base == "WaitDurable";
}

// Path-sensitive walk in the pin-protocol mould. State tracks whether a
// WaitDurable dominates the current point and which locals were
// assigned under a durable_commits-gated branch (the durable target /
// flag); a later branch on a tainted name is itself a durable gate, and
// a gate whose subtree waits establishes dominance for the code after
// it. Both taint and the subtree scan are generous: over-tainting can
// only promote more branches to gates, which silences findings.
struct DurableWalker {
  const FileModel& m;
  const BodySummary& body;
  std::vector<Finding>& out;
  std::set<std::size_t> emitted;

  struct State {
    bool ok = false;  // a durable-horizon wait dominates this point
    std::set<std::string> tainted;
    bool returned = false;
  };

  void Emit(std::size_t line) {
    if (IsAllowed(m.raw, line, "durable-ack")) return;
    if (!emitted.insert(line).second) return;
    out.push_back(
        {m.path, line, "durable-ack",
         "commit acknowledged (arus_committed) on a path not dominated "
         "by a WaitDurable on the durable-LSN horizon: with "
         "durable_commits set, the caller can observe the commit before "
         "its records reach stable storage"});
  }

  bool RangeHasWait(std::size_t first, std::size_t last) const {
    for (const BodyEvent& e : body.events) {
      if (e.tok >= first && e.tok <= last && IsWaitEvent(e)) return true;
    }
    return false;
  }

  void ApplyRange(std::size_t first, std::size_t last, State& st) {
    if (st.returned || last < first) return;
    for (const BodyEvent& e : body.events) {
      if (e.tok < first || e.tok > last) continue;
      if (IsWaitEvent(e)) st.ok = true;
      if (IsAckEvent(e) && !st.ok) Emit(e.line);
    }
  }

  bool CondIsGate(const Stmt& s, const State& st) const {
    for (std::size_t i = s.first;
         i <= s.head_last && i < m.tokens.size(); ++i) {
      const Token& t = m.tokens[i];
      if (!t.IsIdent()) continue;
      if (t.text == "durable_commits" || st.tainted.count(t.text) > 0) {
        return true;
      }
    }
    return false;
  }

  void TaintAssigned(std::size_t first, std::size_t last, State& st) {
    for (std::size_t i = first; i < last && i + 1 < m.tokens.size(); ++i) {
      if (m.tokens[i].IsIdent() && m.tokens[i + 1].Is("=")) {
        st.tainted.insert(m.tokens[i].text);
      }
    }
  }

  void Merge(State& st, State&& then_st, State&& else_st) {
    if (then_st.returned && else_st.returned) {
      st.returned = true;
      return;
    }
    if (then_st.returned) {
      st = std::move(else_st);
      return;
    }
    if (else_st.returned) {
      st = std::move(then_st);
      return;
    }
    st.ok = then_st.ok && else_st.ok;
    st.tainted = std::move(then_st.tainted);
    st.tainted.insert(else_st.tainted.begin(), else_st.tainted.end());
  }

  void WalkList(const std::vector<Stmt>& stmts, State& st) {
    for (const Stmt& s : stmts) {
      if (st.returned) return;
      WalkOne(s, st);
    }
  }

  void WalkOne(const Stmt& s, State& st) {
    switch (s.kind) {
      case Stmt::Kind::kBlock:
        WalkList(s.then_stmts, st);
        break;
      case Stmt::Kind::kIf: {
        ApplyRange(s.first, s.head_last, st);
        const bool gate = CondIsGate(s, st);
        State then_st = st;
        State else_st = st;
        WalkList(s.then_stmts, then_st);
        if (s.has_else) WalkList(s.else_stmts, else_st);
        Merge(st, std::move(then_st), std::move(else_st));
        if (gate && !st.returned) {
          TaintAssigned(s.head_last + 1, s.last, st);
          if (RangeHasWait(s.head_last + 1, s.last)) st.ok = true;
        }
        break;
      }
      case Stmt::Kind::kLoop: {
        if (s.head_last >= s.first) ApplyRange(s.first, s.head_last, st);
        // One symbolic iteration; only taint survives the merge with
        // the zero-iteration path (a wait inside a loop establishes
        // dominance through the gate subtree scan, not here).
        State body_st = st;
        WalkList(s.body, body_st);
        if (!body_st.returned) {
          st.tainted.insert(body_st.tainted.begin(), body_st.tainted.end());
        }
        break;
      }
      case Stmt::Kind::kReturn:
        ApplyRange(s.first, s.last, st);
        st.returned = true;
        break;
      case Stmt::Kind::kBreak:
      case Stmt::Kind::kContinue:
        break;
      default:
        ApplyRange(s.first, s.last, st);
        break;
    }
  }
};

}  // namespace

void CheckDurableAck(const Analysis& a,
                     std::vector<std::vector<Finding>>& per_file) {
  for (const BodySummary& body : a.bodies) {
    const FunctionInfo& fn = *body.fn;
    const FileModel& m = a.models[fn.file];
    if (body.stmts.empty()) continue;
    bool has_ack = false;
    for (const BodyEvent& e : body.events) {
      if (IsAckEvent(e)) {
        has_ack = true;
        break;
      }
    }
    if (!has_ack) continue;
    // The rule applies only where durable_commits gates this body at
    // all; a build that never promises durability acks immediately and
    // legitimately.
    bool mentions_durable = false;
    for (std::size_t i = fn.body_begin;
         i <= fn.body_end && i < m.tokens.size(); ++i) {
      if (m.tokens[i].IsIdent() && m.tokens[i].text == "durable_commits") {
        mentions_durable = true;
        break;
      }
    }
    if (!mentions_durable) continue;
    DurableWalker w{m, body, per_file[fn.file], {}};
    DurableWalker::State st;
    w.WalkList(body.stmts, st);
  }
}

}  // namespace aru::arulint
