#include "tools/arulint/lexer.h"

#include <array>
#include <cctype>

namespace aru::arulint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators the rules care about, longest first.
// Anything not listed lexes as a single character, which is fine: the
// analyses never need to distinguish e.g. "^=" from "^" "=".
constexpr std::array<std::string_view, 19> kPuncts = {
    "->*", "<<=", ">>=", "...", "::", "->", "==", "!=", "<=", ">=",
    "&&",  "||",  "<<",  ">>", "+=", "-=", "*=", "/=", "|=",
};

}  // namespace

std::vector<Token> Lex(std::string_view stripped) {
  std::vector<Token> tokens;
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = stripped.size();
  while (i < n) {
    const char c = stripped[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: skip to end of line, honoring backslash
    // continuations (macro bodies are not surface syntax).
    if (c == '#') {
      while (i < n) {
        const std::size_t nl = stripped.find('\n', i);
        if (nl == std::string_view::npos) {
          i = n;
          break;
        }
        // A trailing backslash (possibly followed by spaces the
        // stripper left behind) continues the directive.
        std::size_t last = nl;
        while (last > i && (stripped[last - 1] == ' ' ||
                            stripped[last - 1] == '\t' ||
                            stripped[last - 1] == '\r')) {
          --last;
        }
        const bool continued = last > i && stripped[last - 1] == '\\';
        i = nl + 1;
        ++line;
        if (!continued) break;
      }
      continue;
    }
    // [[attribute]] blocks: drop them (e.g. [[nodiscard]] before a
    // class name would otherwise confuse the declaration parser).
    if (c == '[' && i + 1 < n && stripped[i + 1] == '[') {
      std::size_t depth = 0;
      while (i < n) {
        if (stripped[i] == '\n') ++line;
        if (stripped[i] == '[') ++depth;
        if (stripped[i] == ']') {
          --depth;
          if (depth == 0) {
            ++i;
            break;
          }
        }
        ++i;
      }
      continue;
    }
    if (IsIdentStart(c)) {
      std::size_t j = i + 1;
      while (j < n && IsIdentChar(stripped[j])) ++j;
      tokens.push_back(
          {Token::Kind::kIdent, std::string(stripped.substr(i, j - i)), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      // Numbers need no internal structure; consume the maximal run of
      // characters that can appear in a literal (hex, separators,
      // suffixes, exponent signs).
      std::size_t j = i + 1;
      while (j < n) {
        const char d = stripped[j];
        if (IsIdentChar(d) || d == '\'' || d == '.') {
          ++j;
        } else if ((d == '+' || d == '-') && j > i &&
                   (stripped[j - 1] == 'e' || stripped[j - 1] == 'E' ||
                    stripped[j - 1] == 'p' || stripped[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      tokens.push_back(
          {Token::Kind::kNumber, std::string(stripped.substr(i, j - i)), line});
      i = j;
      continue;
    }
    std::string_view matched;
    for (const std::string_view p : kPuncts) {
      if (stripped.substr(i, p.size()) == p) {
        matched = p;
        break;
      }
    }
    if (matched.empty()) matched = stripped.substr(i, 1);
    tokens.push_back({Token::Kind::kPunct, std::string(matched), line});
    i += matched.size();
  }
  return tokens;
}

std::size_t MatchForward(const std::vector<Token>& tokens, std::size_t open) {
  if (open >= tokens.size()) return tokens.size();
  const std::string& opener = tokens[open].text;
  std::string closer;
  if (opener == "(") {
    closer = ")";
  } else if (opener == "{") {
    closer = "}";
  } else if (opener == "[") {
    closer = "]";
  } else if (opener == "<") {
    closer = ">";
  } else {
    return tokens.size();
  }
  // Template-argument matching must treat ">>" as two closers; for the
  // other bracket kinds angle tokens are ordinary operators.
  const bool angles = opener == "<";
  std::size_t depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    const std::string& t = tokens[i].text;
    if (t == opener) {
      ++depth;
    } else if (t == closer) {
      if (--depth == 0) return i;
    } else if (angles && t == ">>") {
      if (depth <= 2) return i;
      depth -= 2;
    } else if (angles && (t == ";" || t == "{")) {
      // Not a template argument list after all (e.g. `a < b;`).
      return tokens.size();
    }
  }
  return tokens.size();
}

}  // namespace aru::arulint
