#include "tools/arulint/arulint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

namespace aru::arulint {
namespace {

// How far above a flagged line a justification / allow marker may sit.
constexpr std::size_t kCommentLookback = 3;

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::vector<std::string> SplitLines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

// True if raw line `line` (1-based) or one of the kCommentLookback lines
// above it carries `// arulint: allow(<rule>)`.
bool IsAllowed(const std::vector<std::string>& raw, std::size_t line,
               std::string_view rule) {
  const std::string needle = "arulint: allow(" + std::string(rule) + ")";
  const std::size_t first = line > kCommentLookback ? line - kCommentLookback
                                                    : 1;
  for (std::size_t i = first; i <= line && i <= raw.size(); ++i) {
    if (raw[i - 1].find(needle) != std::string::npos) return true;
  }
  return false;
}

// True if the raw line or one of the lines above holds a non-marker
// comment (the justification for a discarded Status).
bool HasJustification(const std::vector<std::string>& raw, std::size_t line) {
  const std::size_t first = line > kCommentLookback ? line - kCommentLookback
                                                    : 1;
  for (std::size_t i = first; i <= line && i <= raw.size(); ++i) {
    const std::size_t pos = raw[i - 1].find("//");
    if (pos == std::string::npos) continue;
    // Require some text after the slashes.
    const std::string_view rest = std::string_view(raw[i - 1]).substr(pos + 2);
    if (rest.find_first_not_of(" \t") != std::string_view::npos) return true;
  }
  return false;
}

// ---------------------------------------------------------------------
// Rules. Each receives the raw lines (for comments/markers) and the
// stripped lines (for code patterns).

struct RuleInput {
  const std::string& path;
  const std::vector<std::string>& raw;
  const std::vector<std::string>& code;
};

// on-disk-pin: in the format headers, every top-level `struct X {` needs
// static_assert(std::is_trivially_copyable_v<X>) and
// static_assert(sizeof(X) == N) somewhere in the same file.
void CheckOnDiskPins(const RuleInput& in, std::vector<Finding>& findings) {
  static const std::regex kStructRe(R"(^struct\s+([A-Za-z_]\w*)\s*\{)");
  std::string all;
  for (const std::string& line : in.code) {
    all += line;
    all += '\n';
  }
  for (std::size_t i = 0; i < in.code.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(in.code[i], m, kStructRe)) continue;
    const std::string name = m[1].str();
    if (IsAllowed(in.raw, i + 1, "on-disk-pin")) continue;
    const bool has_trivial =
        all.find("is_trivially_copyable_v<" + name + ">") !=
        std::string::npos;
    const bool has_size =
        all.find("sizeof(" + name + ")") != std::string::npos;
    if (!has_trivial || !has_size) {
      findings.push_back(
          {in.path, i + 1, "on-disk-pin",
           "on-disk struct '" + name +
               "' must be pinned with "
               "static_assert(std::is_trivially_copyable_v<" +
               name + ">) and static_assert(sizeof(" + name +
               ") == <bytes>); layout drift silently corrupts recovery "
               "of existing images"});
    }
  }
}

// status-discard: `(void)` before a call expression needs a comment
// saying why dropping the result is sound.
void CheckStatusDiscards(const RuleInput& in, std::vector<Finding>& findings) {
  static const std::regex kDiscardRe(
      R"(\(void\)\s*[A-Za-z_][\w.:]*(->[\w.:]*)*\s*\()");
  for (std::size_t i = 0; i < in.code.size(); ++i) {
    if (!std::regex_search(in.code[i], kDiscardRe)) continue;
    if (IsAllowed(in.raw, i + 1, "status-discard")) continue;
    if (HasJustification(in.raw, i + 1)) continue;
    findings.push_back(
        {in.path, i + 1, "status-discard",
         "(void)-discarded call result needs a justification comment on "
         "this line or directly above (why is ignoring the Status "
         "sound?)"});
  }
}

// banned-call: rand() and time(nullptr) break the deterministic replay
// the crash-injection tests depend on.
void CheckBannedCalls(const RuleInput& in, std::vector<Finding>& findings) {
  static const std::regex kRandRe(R"((^|[^\w:.>])rand\s*\()");
  static const std::regex kTimeRe(
      R"((^|[^\w:.>])time\s*\(\s*(nullptr|NULL|0)\s*\))");
  for (std::size_t i = 0; i < in.code.size(); ++i) {
    const std::string& line = in.code[i];
    if (std::regex_search(line, kRandRe) &&
        !IsAllowed(in.raw, i + 1, "banned-call")) {
      findings.push_back({in.path, i + 1, "banned-call",
                          "rand() is banned: use util/rng.h (seeded, "
                          "deterministic) so crash schedules replay"});
    }
    if (std::regex_search(line, kTimeRe) &&
        !IsAllowed(in.raw, i + 1, "banned-call")) {
      findings.push_back({in.path, i + 1, "banned-call",
                          "time(nullptr) is banned: use obs::NowUs() or "
                          "the VirtualClock so runs are reproducible"});
    }
  }
}

// raw-new: `new` outside smart-pointer construction leaks on the error
// paths Status-based code takes; wrap or justify.
void CheckRawNew(const RuleInput& in, std::vector<Finding>& findings) {
  static const std::regex kNewRe(R"((^|[^\w_])new\s+[A-Za-z_(])");
  static const std::regex kSmartRe(
      R"(unique_ptr|shared_ptr|make_unique|make_shared)");
  for (std::size_t i = 0; i < in.code.size(); ++i) {
    if (!std::regex_search(in.code[i], kNewRe)) continue;
    if (std::regex_search(in.code[i], kSmartRe)) continue;
    // The smart-pointer wrapper may sit on the previous line when the
    // expression wraps: `std::unique_ptr<T>(\n    new T(...));`.
    if (i > 0 && std::regex_search(in.code[i - 1], kSmartRe)) continue;
    if (IsAllowed(in.raw, i + 1, "raw-new")) continue;
    findings.push_back(
        {in.path, i + 1, "raw-new",
         "raw `new` is banned: construct through std::make_unique / "
         "std::unique_ptr (error paths return Status and would leak)"});
  }
}

// recovery-assert: recovery and the consistency checker digest
// disk-derived data; corruption must return kCorruption, never abort.
void CheckRecoveryAsserts(const RuleInput& in,
                          std::vector<Finding>& findings) {
  static const std::regex kAssertRe(R"((^|[^\w_])assert\s*\()");
  for (std::size_t i = 0; i < in.code.size(); ++i) {
    if (!std::regex_search(in.code[i], kAssertRe)) continue;
    if (IsAllowed(in.raw, i + 1, "recovery-assert")) continue;
    findings.push_back(
        {in.path, i + 1, "recovery-assert",
         "assert() in a recovery/consistency path: these functions "
         "consume disk-derived data, so corruption must surface as "
         "StatusCode::kCorruption, not a process abort"});
  }
}

bool IsFormatHeader(const std::string& path) {
  return EndsWith(path, "lld/layout.h") || EndsWith(path, "lld/summary.h") ||
         EndsWith(path, "lld/checkpoint.h") ||
         EndsWith(path, "minixfs/format.h");
}

bool IsRecoveryPath(const std::string& path) {
  return EndsWith(path, "lld_recovery.cc") ||
         EndsWith(path, "lld_consistency.cc");
}

}  // namespace

std::string FormatFinding(const Finding& finding) {
  std::ostringstream os;
  os << finding.file << ":" << finding.line << ": [" << finding.rule << "] "
     << finding.message;
  return os.str();
}

std::string StripCommentsAndStrings(std::string_view source) {
  std::string out;
  out.reserve(source.size());
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
  };
  State state = State::kCode;
  for (std::size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    const char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kString;
          out += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<Finding> CheckSource(const std::string& path,
                                 std::string_view content) {
  const std::vector<std::string> raw = SplitLines(content);
  const std::vector<std::string> code =
      SplitLines(StripCommentsAndStrings(content));
  const RuleInput in{path, raw, code};

  std::vector<Finding> findings;
  if (IsFormatHeader(path)) CheckOnDiskPins(in, findings);
  CheckStatusDiscards(in, findings);
  CheckBannedCalls(in, findings);
  CheckRawNew(in, findings);
  if (IsRecoveryPath(path)) CheckRecoveryAsserts(in, findings);

  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return findings;
}

std::vector<Finding> CheckFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return {{path, 0, "io-error", "cannot open file"}};
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return CheckSource(path, buffer.str());
}

std::vector<Finding> CheckTree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file()) continue;
    const std::string p = it->path().string();
    if (EndsWith(p, ".h") || EndsWith(p, ".cc")) files.push_back(p);
  }
  if (ec) {
    return {{root, 0, "io-error", "cannot walk tree: " + ec.message()}};
  }
  std::sort(files.begin(), files.end());
  std::vector<Finding> findings;
  for (const std::string& file : files) {
    std::vector<Finding> f = CheckFile(file);
    findings.insert(findings.end(), f.begin(), f.end());
  }
  return findings;
}

}  // namespace aru::arulint
