#include "tools/arulint/arulint.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "tools/arulint/lexer.h"
#include "tools/arulint/model.h"
#include "tools/arulint/rules_internal.h"

namespace aru::arulint {
namespace {

// How far above a flagged line a justification / allow marker may sit.
constexpr std::size_t kCommentLookback = 3;

// True if the raw line or one of the lines above holds a non-marker
// comment (the justification for a discarded Status).
bool HasJustification(const std::vector<std::string>& raw, std::size_t line) {
  const std::size_t first = line > kCommentLookback ? line - kCommentLookback
                                                    : 1;
  for (std::size_t i = first; i <= line && i <= raw.size(); ++i) {
    const std::size_t pos = raw[i - 1].find("//");
    if (pos == std::string::npos) continue;
    // Require some text after the slashes.
    const std::string_view rest = std::string_view(raw[i - 1]).substr(pos + 2);
    if (rest.find_first_not_of(" \t") != std::string_view::npos) return true;
  }
  return false;
}

std::string Basename(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

// Shared helpers (declared in rules_internal.h; symmetry.cc uses them
// too, so they carry external linkage).

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// True if raw line `line` (1-based) or one of the kCommentLookback lines
// above it carries `// arulint: allow(<rule>)`.
bool IsAllowed(const std::vector<std::string>& raw, std::size_t line,
               std::string_view rule) {
  const std::string needle = "arulint: allow(" + std::string(rule) + ")";
  const std::size_t first = line > kCommentLookback ? line - kCommentLookback
                                                    : 1;
  for (std::size_t i = first; i <= line && i <= raw.size(); ++i) {
    if (raw[i - 1].find(needle) != std::string::npos) return true;
  }
  return false;
}

// Format headers hold on-disk layouts. Matched by basename so that new
// format headers anywhere under a scanned root are covered without
// touching the tool.
bool IsFormatHeader(const std::string& path) {
  const std::string base = Basename(path);
  return base == "layout.h" || base == "summary.h" ||
         base == "checkpoint.h" || base == "format.h";
}

// Recovery rebuilds the tables FROM the log, so the crash-ordering
// obligation is trivially met there (and asserts are separately
// banned).
bool IsRecoveryPath(const std::string& path) {
  return EndsWith(path, "lld_recovery.cc") ||
         EndsWith(path, "lld_consistency.cc");
}

std::string BaseOf(const std::string& qname) {
  const std::size_t sep = qname.rfind("::");
  return sep == std::string::npos ? qname : qname.substr(sep + 2);
}

namespace {

bool TargetAppends(const Analysis& a, const BodyEvent& e) {
  if (!e.callee_qname.empty()) {
    return a.index.may_append.count(e.callee_qname) > 0;
  }
  // Unresolved: fall back to the base name. Generous on purpose — the
  // fallback can only mark more paths as appending, which weakens
  // crash-order findings, never fabricates one.
  return a.appender_bases.count(e.callee_base) > 0;
}

// Is this call an obligation site (a call into an annotated table
// mutator that operates on the caller's real tables)?
bool IsMutatorObligation(const Analysis& a, const BodyEvent& e) {
  std::string qname;
  if (!e.callee_qname.empty()) {
    if (a.index.annotated_mutators.count(e.callee_qname) == 0) return false;
    qname = e.callee_qname;
  } else {
    // Unresolved: only when the base name unambiguously means an
    // annotated mutator (strict on purpose — ambiguity must not invent
    // findings).
    if (a.mutator_bases.count(e.callee_base) == 0) return false;
    for (const std::string& q : a.index.annotated_mutators) {
      if (BaseOf(q) == e.callee_base) {
        qname = q;
        break;
      }
    }
    if (qname.empty()) return false;
  }
  // A mutator taking the tables as reference parameters mutates only
  // what the caller passes: if every table argument at this site is a
  // scratch local (recovery candidates, fsck shadows), the caller's
  // real tables are untouched and no ordering obligation arises.
  const auto it = a.index.by_qname.find(qname);
  if (it != a.index.by_qname.end()) {
    bool takes_table_ref = false;
    for (const FunctionInfo* fn : it->second) {
      for (const Param& p : fn->params) {
        if (a.index.IsTableType(p.type_head) && p.is_ref && !p.is_const) {
          takes_table_ref = true;
        }
      }
    }
    if (takes_table_ref && !e.real_table_arg) return false;
  }
  return true;
}

// ---------------------------------------------------------------------
// crash-order: within each body, a table mutation (or a call into an
// annotated mutator) must be preceded — in statement order, the
// dominance approximation — by a summary/commit append, unless the
// enclosing function is itself annotated ARU_MUTATES_TABLES (moving
// the obligation to ITS callers) or the site carries allow(crash-order).
void CheckCrashOrder(const Analysis& a, const FileModel& m,
                     const BodySummary& body, std::vector<Finding>& out) {
  const bool self_mutator =
      a.index.annotated_mutators.count(body.fn->qname) > 0;
  bool append_seen = false;
  for (const BodyEvent& e : body.events) {
    if (e.kind == BodyEvent::Kind::kCall) {
      if (!append_seen && !self_mutator && IsMutatorObligation(a, e) &&
          !IsAllowed(m.raw, e.line, "crash-order")) {
        out.push_back(
            {m.path, e.line, "crash-order",
             "call to table mutator '" + e.callee_base +
                 "' is not preceded by a summary/commit-record append on "
                 "this path; annotate the enclosing function "
                 "ARU_MUTATES_TABLES or append first (the write-ordering "
                 "protocol: the log entry must reach the segment before "
                 "the tables change)"});
      }
      if (TargetAppends(a, e)) append_seen = true;
    } else if (e.kind == BodyEvent::Kind::kMutation) {
      if (!append_seen && !self_mutator &&
          !IsAllowed(m.raw, e.line, "crash-order")) {
        out.push_back(
            {m.path, e.line, "crash-order",
             "mutation of table '" + e.table_expr +
                 "' is not preceded by a summary/commit-record append on "
                 "this path; annotate the enclosing function "
                 "ARU_MUTATES_TABLES or append first (recovery replays "
                 "the log — state the log never saw cannot be rebuilt)"});
      }
    }
  }
}

// ---------------------------------------------------------------------
// status-flow (body half): bare-statement calls that drop a Status /
// Result, and Status locals that are never read back.
void CheckStatusFlow(const Analysis& a, const FileModel& m,
                     const BodySummary& body, std::vector<Finding>& out) {
  for (const BodyEvent& e : body.events) {
    if (e.kind != BodyEvent::Kind::kCall || !e.stmt_bare) continue;
    bool returns_status = false;
    if (!e.callee_qname.empty()) {
      returns_status = a.index.ReturnsStatus(e.callee_qname);
    } else {
      const auto it = a.index.base_status.find(e.callee_base);
      returns_status = it != a.index.base_status.end() &&
                       it->second.first > 0 && it->second.second == 0;
    }
    if (!returns_status) continue;
    if (IsAllowed(m.raw, e.line, "status-flow")) continue;
    out.push_back(
        {m.path, e.line, "status-flow",
         "result of Status-returning call '" + e.callee_base +
             "' is dropped: return it, check it, or (void)-discard it "
             "with a justification comment"});
  }
  for (const StatusLocal& local : body.status_locals) {
    if (local.used_later) continue;
    if (IsAllowed(m.raw, local.line, "status-flow")) continue;
    out.push_back(
        {m.path, local.line, "status-flow",
         "Status local '" + local.name +
             "' is never examined after initialization: the error it may "
             "carry is silently lost"});
  }
}

// status-flow (lexical half, kept from v1's status-discard): a
// (void)-discarded call needs a justification comment nearby.
void CheckVoidDiscards(const FileModel& m, std::vector<Finding>& out) {
  const std::vector<Token>& t = m.tokens;
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    if (!t[i].Is("(") || !t[i + 1].Is("void") || !t[i + 2].Is(")") ||
        !t[i + 3].IsIdent()) {
      continue;
    }
    // Walk the callee chain; a call paren must follow.
    std::size_t j = i + 3;
    while (j + 2 < t.size() &&
           (t[j + 1].Is("::") || t[j + 1].Is(".") || t[j + 1].Is("->")) &&
           t[j + 2].IsIdent()) {
      j += 2;
    }
    if (j + 1 >= t.size() || !t[j + 1].Is("(")) continue;
    const std::size_t line = t[i].line;
    if (IsAllowed(m.raw, line, "status-flow")) continue;
    if (HasJustification(m.raw, line)) continue;
    out.push_back(
        {m.path, line, "status-flow",
         "(void)-discarded call result needs a justification comment on "
         "this line or directly above (why is ignoring the Status "
         "sound?)"});
  }
}

// ---------------------------------------------------------------------
// banned-call / raw-new / recovery-assert (token rewrites of v1).

bool PrevIsMemberAccess(const std::vector<Token>& t, std::size_t i) {
  if (i == 0) return false;
  return t[i - 1].Is(".") || t[i - 1].Is("->") || t[i - 1].Is("::");
}

void CheckBannedCalls(const FileModel& m, std::vector<Finding>& out) {
  const std::vector<Token>& t = m.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!t[i].IsIdent()) continue;
    if (t[i].text == "rand" && t[i + 1].Is("(") &&
        !PrevIsMemberAccess(t, i)) {
      if (!IsAllowed(m.raw, t[i].line, "banned-call")) {
        out.push_back({m.path, t[i].line, "banned-call",
                       "rand() is banned: use util/rng.h (seeded, "
                       "deterministic) so crash schedules replay"});
      }
    }
    if (t[i].text == "time" && t[i + 1].Is("(") && i + 3 < t.size() &&
        (t[i + 2].Is("nullptr") || t[i + 2].Is("NULL") ||
         t[i + 2].Is("0")) &&
        t[i + 3].Is(")") && !PrevIsMemberAccess(t, i)) {
      if (!IsAllowed(m.raw, t[i].line, "banned-call")) {
        out.push_back({m.path, t[i].line, "banned-call",
                       "time(nullptr) is banned: use obs::NowUs() or "
                       "the VirtualClock so runs are reproducible"});
      }
    }
  }
}

bool LineHasSmartPointer(const FileModel& m, std::size_t line) {
  if (line == 0 || line > m.code.size()) return false;
  const std::string& s = m.code[line - 1];
  return s.find("unique_ptr") != std::string::npos ||
         s.find("shared_ptr") != std::string::npos ||
         s.find("make_unique") != std::string::npos ||
         s.find("make_shared") != std::string::npos;
}

void CheckRawNew(const FileModel& m, std::vector<Finding>& out) {
  const std::vector<Token>& t = m.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!t[i].IsIdent() || t[i].text != "new") continue;
    if (!t[i + 1].IsIdent() && !t[i + 1].Is("(")) continue;
    const std::size_t line = t[i].line;
    // The smart-pointer wrapper may sit on the same or previous line
    // when the expression wraps: `std::unique_ptr<T>(\n    new T(...))`.
    if (LineHasSmartPointer(m, line) || LineHasSmartPointer(m, line - 1)) {
      continue;
    }
    if (IsAllowed(m.raw, line, "raw-new")) continue;
    out.push_back(
        {m.path, line, "raw-new",
         "raw `new` is banned: construct through std::make_unique / "
         "std::unique_ptr (error paths return Status and would leak)"});
  }
}

void CheckRecoveryAsserts(const FileModel& m, std::vector<Finding>& out) {
  const std::vector<Token>& t = m.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!t[i].IsIdent() || t[i].text != "assert" || !t[i + 1].Is("(")) {
      continue;
    }
    if (IsAllowed(m.raw, t[i].line, "recovery-assert")) continue;
    out.push_back(
        {m.path, t[i].line, "recovery-assert",
         "assert() in a recovery/consistency path: these functions "
         "consume disk-derived data, so corruption must surface as "
         "StatusCode::kCorruption, not a process abort"});
  }
}

// ---------------------------------------------------------------------
// named-lock: every declared Mutex / SharedMutex must be constructed
// with a site-name string (`Mutex mu_{"lld_mu"};`) so contended waits
// attribute to a per-site metric pair instead of vanishing. Lexical
// rule: the declaration's raw lines (through the end of the
// initializer) must contain a string literal; tokens come from the
// stripped source, so the literal itself is invisible there.

void CheckNamedLocks(const FileModel& m, std::vector<Finding>& out) {
  const std::vector<Token>& t = m.tokens;
  const auto line_has_quote = [&m](std::size_t line) {
    return line >= 1 && line <= m.raw.size() &&
           m.raw[line - 1].find('"') != std::string::npos;
  };
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!t[i].IsIdent() ||
        (t[i].text != "Mutex" && t[i].text != "SharedMutex")) {
      continue;
    }
    // Qualified mentions, the class definitions themselves, and
    // destructors are not variable declarations.
    if (i > 0 && (t[i - 1].Is("::") || t[i - 1].Is(".") ||
                  t[i - 1].Is("->") || t[i - 1].Is("~") ||
                  t[i - 1].Is("class") || t[i - 1].Is("struct") ||
                  t[i - 1].Is("typename") || t[i - 1].Is("friend"))) {
      continue;
    }
    // A declaration is `Mutex <ident> ...`; anything else (`Mutex&`
    // parameters, `Mutex*`, `Mutex(` constructors, `Mutex>` template
    // arguments) is a type mention.
    if (!t[i + 1].IsIdent()) continue;
    if (t[i + 1].text.rfind("ARU_", 0) == 0) continue;  // annotation macro
    const Token& after = t[i + 2];
    bool unnamed = false;
    if (after.Is(";")) {
      unnamed = true;  // default-constructed: no site at all
    } else if (after.Is("{") || after.Is("(")) {
      // Initializer present: named iff a string literal appears on the
      // declaration's raw lines up to the initializer's close.
      std::size_t close_line = after.line;
      int depth = 0;
      for (std::size_t j = i + 2; j < t.size(); ++j) {
        if (t[j].Is("{") || t[j].Is("(")) {
          ++depth;
        } else if (t[j].Is("}") || t[j].Is(")")) {
          if (--depth == 0) {
            close_line = t[j].line;
            break;
          }
        }
      }
      unnamed = true;
      for (std::size_t line = t[i].line; line <= close_line; ++line) {
        if (line_has_quote(line)) {
          unnamed = false;
          break;
        }
      }
    }
    // Other follow tokens (',' ')' '=' ...) are parameter declarations
    // or type positions — not construction sites.
    if (!unnamed) continue;
    if (IsAllowed(m.raw, t[i].line, "named-lock")) continue;
    out.push_back(
        {m.path, t[i].line, "named-lock",
         "lock '" + t[i + 1].text + "' (" + t[i].text +
             ") is constructed without a site name: pass one "
             "(`Mutex mu_{\"subsystem_site\"};`) so contended waits "
             "attribute to aru_lock_contended_total_<site> / "
             "aru_lock_wait_us_<site> instead of vanishing"});
  }
}

// ---------------------------------------------------------------------
// on-disk-pin + on-disk-field.

}  // namespace

// PinIndex lives in rules_internal.h; field-symmetry scopes itself to
// pinned structs with the same collector.
PinIndex CollectPins(const FileModel& m) {
  PinIndex pins;
  const std::vector<Token>& t = m.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].Is("is_trivially_copyable_v") && t[i + 1].Is("<") &&
        t[i + 2].IsIdent()) {
      pins.trivially_copyable.insert(t[i + 2].text);
    }
    if (t[i].Is("sizeof") && t[i + 1].Is("(") && t[i + 2].IsIdent() &&
        i + 3 < t.size() && t[i + 3].Is(")")) {
      pins.sizeof_pinned.insert(t[i + 2].text);
    }
  }
  return pins;
}

namespace {

void CheckOnDiskPins(const FileModel& m, const PinIndex& pins,
                     std::vector<Finding>& out) {
  for (const StructInfo& s : m.structs) {
    if (!s.namespace_scope) continue;
    if (IsAllowed(m.raw, s.line, "on-disk-pin")) continue;
    const bool has_trivial = pins.trivially_copyable.count(s.name) > 0;
    const bool has_size = pins.sizeof_pinned.count(s.name) > 0;
    if (has_trivial && has_size) continue;
    out.push_back(
        {m.path, s.line, "on-disk-pin",
         "on-disk struct '" + s.name +
             "' must be pinned with "
             "static_assert(std::is_trivially_copyable_v<" +
             s.name + ">) and static_assert(sizeof(" + s.name +
             ") == <bytes>); layout drift silently corrupts recovery "
             "of existing images"});
  }
}

struct FieldType {
  bool ok = false;
  std::size_t size = 0;
  std::size_t align = 0;
  std::string bad_reason;
};

FieldType ResolveFieldType(const ProjectIndex& index, std::string head) {
  FieldType result;
  // Resolve `using` aliases (Lsn -> uint64_t, InodeNum -> uint32_t).
  for (int depth = 0; depth < 8; ++depth) {
    // The 8-byte id/address wrappers from ld/ids.h and lld/types.h are
    // single-u64 trivially-copyable classes; the codec pins their
    // width.
    if (head == "BlockId" || head == "ListId" || head == "AruId" ||
        head == "PhysAddr") {
      result.ok = true;
      result.size = result.align = 8;
      return result;
    }
    static const std::map<std::string_view, std::size_t> kFixed = {
        {"uint8_t", 1},  {"int8_t", 1},  {"uint16_t", 2}, {"int16_t", 2},
        {"uint32_t", 4}, {"int32_t", 4}, {"uint64_t", 8}, {"int64_t", 8},
    };
    const auto fit = kFixed.find(head);
    if (fit != kFixed.end()) {
      result.ok = true;
      result.size = result.align = fit->second;
      return result;
    }
    const auto eit = index.enums.find(head);
    if (eit != index.enums.end()) {
      if (eit->second.empty()) {
        result.bad_reason =
            "enum '" + head + "' has no fixed underlying type";
        return result;
      }
      head = eit->second;
      continue;
    }
    const auto ait = index.aliases.find(head);
    if (ait != index.aliases.end()) {
      head = ait->second;
      continue;
    }
    break;
  }
  static const std::set<std::string_view> kBanned = {
      "bool",    "int",      "unsigned", "long",     "short",   "signed",
      "char",    "wchar_t",  "float",    "double",   "size_t",  "ssize_t",
      "ptrdiff_t", "intptr_t", "uintptr_t", "string", "vector",
  };
  if (kBanned.count(head) > 0) {
    result.bad_reason = "'" + head +
                        "' is not a fixed-width on-disk type (width or "
                        "representation varies by platform)";
  } else {
    result.bad_reason = "type '" + head +
                        "' is not a recognized fixed-width on-disk type";
  }
  return result;
}

// Fields of *pinned* structs (both pin halves present, no allow()
// marker) must be fixed-width and introduce no implicit padding. The
// offsets are computed with natural alignment, which is what the
// static_assert(sizeof) pins already force the compiler to agree with.
void CheckOnDiskFields(const FileModel& m, const ProjectIndex& index,
                       const PinIndex& pins, std::vector<Finding>& out) {
  for (const StructInfo& s : m.structs) {
    if (!s.namespace_scope) continue;
    if (pins.trivially_copyable.count(s.name) == 0 ||
        pins.sizeof_pinned.count(s.name) == 0) {
      continue;  // unpinned: on-disk-pin already flags it
    }
    if (IsAllowed(m.raw, s.line, "on-disk-pin") ||
        IsAllowed(m.raw, s.line, "on-disk-field")) {
      continue;
    }
    std::size_t offset = 0;
    std::size_t max_align = 1;
    bool layout_known = true;
    for (const FieldInfo& f : s.fields) {
      if (f.is_pointer || f.is_reference) {
        if (!IsAllowed(m.raw, f.line, "on-disk-field")) {
          out.push_back({m.path, f.line, "on-disk-field",
                         "field '" + f.name + "' of on-disk struct '" +
                             s.name +
                             "' is a pointer/reference: on-disk records "
                             "hold values, never addresses"});
        }
        layout_known = false;
        continue;
      }
      const FieldType type = ResolveFieldType(index, f.type_head);
      if (!type.ok) {
        if (!IsAllowed(m.raw, f.line, "on-disk-field")) {
          out.push_back({m.path, f.line, "on-disk-field",
                         "field '" + f.name + "' of on-disk struct '" +
                             s.name + "': " + type.bad_reason});
        }
        layout_known = false;
        continue;
      }
      if (!layout_known) continue;
      const std::size_t pad =
          (type.align - offset % type.align) % type.align;
      if (pad > 0 && !IsAllowed(m.raw, f.line, "on-disk-field")) {
        out.push_back(
            {m.path, f.line, "on-disk-field",
             "field '" + f.name + "' of on-disk struct '" + s.name +
                 "' sits after " + std::to_string(pad) +
                 " byte(s) of implicit padding: make the padding an "
                 "explicit reserved field so the serialized bytes are "
                 "fully specified"});
      }
      offset += pad + type.size * f.array_len;
      max_align = std::max(max_align, type.align);
    }
    if (layout_known && !s.fields.empty()) {
      const std::size_t tail =
          (max_align - offset % max_align) % max_align;
      if (tail > 0 && !IsAllowed(m.raw, s.line, "on-disk-field")) {
        out.push_back(
            {m.path, s.line, "on-disk-field",
             "on-disk struct '" + s.name + "' carries " +
                 std::to_string(tail) +
                 " byte(s) of implicit tail padding: add an explicit "
                 "reserved field so sizeof covers only specified bytes"});
      }
    }
  }
}

// ---------------------------------------------------------------------
// lock-order: collect edges (held -> acquired) from every body, then
// flag every edge that participates in a cycle.

void CollectLockEdges(const Analysis& a, std::size_t file,
                      const BodySummary& body, std::vector<LockEdge>& out) {
  for (const BodyEvent& e : body.events) {
    if (e.kind == BodyEvent::Kind::kAcquire) {
      for (const std::string& held : e.held_locks) {
        out.push_back({file, e.line, held, e.lock_key,
                       e.held_shared.count(held) > 0, e.acquire_shared});
      }
    } else if (e.kind == BodyEvent::Kind::kCall && !e.held_locks.empty() &&
               !e.callee_qname.empty()) {
      const auto it = a.index.may_acquire.find(e.callee_qname);
      if (it == a.index.may_acquire.end()) continue;
      for (const auto& [acquired, acquired_shared] : it->second) {
        for (const std::string& held : e.held_locks) {
          out.push_back({file, e.line, held, acquired,
                         e.held_shared.count(held) > 0, acquired_shared});
        }
      }
    }
  }
}

void CheckLockOrder(const Analysis& a,
                    std::vector<std::vector<Finding>>& per_file) {
  // Deduplicate edges per (held, acquired, modes), keeping the first
  // site seen. Modes are part of the key so that a shared-shared
  // re-acquire (benign, see below) does not swallow an exclusive
  // re-acquire of the same mutex elsewhere.
  std::map<std::tuple<std::string, std::string, bool, bool>,
           const LockEdge*>
      edges;
  std::map<std::string, std::set<std::string>> adj;
  for (const LockEdge& e : a.lock_edges) {
    edges.emplace(
        std::make_tuple(e.held, e.acquired, e.held_shared, e.acquired_shared),
        &e);
    adj[e.held].insert(e.acquired);
  }
  const auto reaches = [&adj](const std::string& from,
                              const std::string& to) {
    std::set<std::string> seen;
    std::vector<std::string> stack{from};
    while (!stack.empty()) {
      const std::string cur = stack.back();
      stack.pop_back();
      if (cur == to) return true;
      if (!seen.insert(cur).second) continue;
      const auto it = adj.find(cur);
      if (it == adj.end()) continue;
      for (const std::string& next : it->second) stack.push_back(next);
    }
    return false;
  };
  for (const auto& [key, edge] : edges) {
    const auto& [held, acquired, held_shared, acquired_shared] = key;
    // Shared re-acquire under a shared hold of the same mutex does not
    // self-deadlock (both holds are reader-mode); it is not flagged.
    // Every other same-key combination is: SharedMutex has no upgrade
    // path, so exclusive-after-shared blocks on our own reader hold.
    if (held == acquired && held_shared && acquired_shared) continue;
    const bool cyclic = held == acquired || reaches(acquired, held);
    if (!cyclic) continue;
    const FileModel& m = a.models[edge->file];
    if (IsAllowed(m.raw, edge->line, "lock-order")) continue;
    std::string message;
    if (held == acquired && held_shared && !acquired_shared) {
      message = "acquiring mutex '" + acquired +
                "' exclusively while holding it in shared mode: lock "
                "upgrade is a self-deadlock (SharedMutex has no upgrade "
                "path; release the reader lock and re-acquire exclusive)";
    } else if (held == acquired) {
      message = "acquiring mutex '" + acquired +
                "' while it is already held: self-deadlock";
    } else {
      message = "acquiring mutex '" + acquired + "' while holding '" + held +
                "' closes a cycle in the lock acquisition graph: "
                "another thread taking them in the opposite order "
                "deadlocks";
    }
    per_file[edge->file].push_back(
        {m.path, edge->line, "lock-order", std::move(message)});
  }
}

// ---------------------------------------------------------------------
// shard-order: nested acquisitions of elements of ONE lock array (the
// sharded-table pattern: `locks_[i].mu` keys, i.e. lock keys of the
// shape base[index]suffix with a common base and suffix) must be
// provably ascending by element index. lock-order cannot see this:
// `shards_[0].mu` and `shards_[1].mu` are distinct graph nodes, so an
// AB edge only deadlocks once some other body adds the BA edge —
// which for a dynamically indexed array the graph usually can't
// witness. The protocol rule is stricter and local: a second element
// of the same array may only be taken while the first is held when
// both indices are integer literals in strictly ascending order;
// anything else (descending, equal, or runtime indices) is flagged,
// because two threads with opposite index values ARE the AB/BA pair.

struct ShardLockKey {
  std::string base;    // text before '['
  std::string index;   // text between the brackets
  std::string suffix;  // text after ']' (".mu" etc.)
};

// Accepts exactly one bracket group with a non-empty base and index.
bool ParseShardLockKey(const std::string& key, ShardLockKey& out) {
  const std::size_t open = key.find('[');
  if (open == std::string::npos || open == 0) return false;
  const std::size_t close = key.find(']', open + 1);
  if (close == std::string::npos || close == open + 1) return false;
  if (key.find('[', close + 1) != std::string::npos) return false;
  out.base = key.substr(0, open);
  out.index = key.substr(open + 1, close - open - 1);
  out.suffix = key.substr(close + 1);
  return true;
}

bool IsIndexLiteral(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

void CheckShardOrder(const Analysis& a,
                     std::vector<std::vector<Finding>>& per_file) {
  // One finding per (held, acquired) pair, first site seen — the same
  // dedup lock-order applies, minus the modes (shard locks are plain
  // Mutexes; mode does not change the ordering obligation).
  std::set<std::pair<std::string, std::string>> reported;
  for (const LockEdge& e : a.lock_edges) {
    ShardLockKey held, acquired;
    if (!ParseShardLockKey(e.held, held) ||
        !ParseShardLockKey(e.acquired, acquired)) {
      continue;
    }
    if (held.base != acquired.base || held.suffix != acquired.suffix) {
      continue;  // different arrays: ordinary lock-order territory
    }
    const bool provable =
        IsIndexLiteral(held.index) && IsIndexLiteral(acquired.index);
    if (provable &&
        std::stoull(acquired.index) > std::stoull(held.index)) {
      continue;  // strictly ascending literals: the sanctioned shape
    }
    if (!reported.emplace(e.held, e.acquired).second) continue;
    const FileModel& m = a.models[e.file];
    if (IsAllowed(m.raw, e.line, "shard-order")) continue;
    std::string message;
    if (provable) {
      message =
          "acquiring shard lock '" + e.acquired + "' while holding '" +
          e.held +
          "': elements of one lock array must be acquired in strictly "
          "ascending index order (a thread visiting the shards in the "
          "opposite order deadlocks against this one)";
    } else {
      message =
          "acquiring shard lock '" + e.acquired + "' while holding '" +
          e.held +
          "' of the same lock array: ascending order is not provable "
          "from non-literal indices; hold at most one shard lock at a "
          "time (group updates per shard, then visit shards in "
          "ascending index order)";
    }
    per_file[e.file].push_back(
        {m.path, e.line, "shard-order", std::move(message)});
  }
}

// ---------------------------------------------------------------------
// atomic-order: every std::atomic must declare its memory-order
// discipline (ARU_ATOMIC_COUNTER / ARU_ATOMIC_PUBLISHES), and relaxed
// operations on a publishing atomic are flagged.

// Resolves the annotation governing atomic ops on `name` inside
// `body`: function-local statics first, then the project-wide decls —
// but only when every same-named decl agrees (disagreement means the
// receiver is ambiguous, and ambiguity must not invent findings).
AtomicAnn ResolveAtomicAnn(const Analysis& a, const BodySummary& body,
                           const std::string& name, bool& known) {
  for (const AtomicDecl& d : body.atomic_locals) {
    if (d.name == name) {
      known = true;
      return d.ann;
    }
  }
  AtomicAnn ann = AtomicAnn::kNone;
  bool any = false;
  bool agree = true;
  for (const AtomicDecl& d : a.index.atomics) {
    if (d.name != name) continue;
    if (!any) {
      ann = d.ann;
      any = true;
    } else if (d.ann != ann) {
      agree = false;
    }
  }
  known = any && agree;
  return ann;
}

void CheckAtomicOrder(const Analysis& a,
                      std::vector<std::vector<Finding>>& per_file) {
  const auto flag_decl = [&](std::size_t file, const AtomicDecl& d) {
    const FileModel& m = a.models[file];
    if (IsAllowed(m.raw, d.line, "atomic-order")) return;
    const std::string owner =
        d.cls.empty() ? d.name : d.cls + "::" + d.name;
    per_file[file].push_back(
        {m.path, d.line, "atomic-order",
         "std::atomic '" + owner +
             "' carries no ARU_ATOMIC_COUNTER / ARU_ATOMIC_PUBLISHES "
             "annotation: the memory-order discipline its readers rely "
             "on is undeclared (see util/protocol_annotations.h)"});
  };
  for (const AtomicDecl& d : a.index.atomics) {
    if (d.ann == AtomicAnn::kNone) flag_decl(d.file, d);
  }
  for (const BodySummary& body : a.bodies) {
    for (const AtomicDecl& d : body.atomic_locals) {
      if (d.ann == AtomicAnn::kNone) flag_decl(body.fn->file, d);
    }
    const FileModel& m = a.models[body.fn->file];
    for (const BodyEvent& e : body.events) {
      if (e.kind != BodyEvent::Kind::kCall || !e.atomic_relaxed ||
          e.recv_name.empty()) {
        continue;
      }
      bool known = false;
      const AtomicAnn ann = ResolveAtomicAnn(a, body, e.recv_name, known);
      if (!known || ann != AtomicAnn::kPublishes) continue;
      if (IsAllowed(m.raw, e.line, "atomic-order")) continue;
      per_file[body.fn->file].push_back(
          {m.path, e.line, "atomic-order",
           "memory_order_relaxed " + e.callee_base +
               " on publishing atomic '" + e.recv_name +
               "': ARU_ATOMIC_PUBLISHES requires release on the write "
               "and acquire on the read, or the data the value stands "
               "for may not be visible when the value is"});
    }
  }
}

// ---------------------------------------------------------------------
// pin-protocol: every SlotPins::Pin must be released (directly or by
// handing the slot to a PinGuard) on every path out of the body, and
// device bytes read with no lock held must pass a generation
// re-validation before they are cached.

void CheckPinProtocol(const Analysis& a,
                      std::vector<std::vector<Finding>>& per_file) {
  struct Walker {
    const FileModel& m;
    const BodySummary& body;
    std::vector<Finding>& out;
    std::set<std::pair<std::size_t, std::string>> emitted;

    struct State {
      std::set<std::size_t> open;  // lines of unreleased Pin calls
      bool unvalidated = false;    // post-lock-drop read, gen unchecked
      bool returned = false;
    };

    void Emit(std::size_t line, std::string msg) {
      if (IsAllowed(m.raw, line, "pin-protocol")) return;
      if (!emitted.insert({line, msg}).second) return;
      out.push_back({m.path, line, "pin-protocol", std::move(msg)});
    }

    void Apply(const BodyEvent& e, State& st) {
      if (e.kind != BodyEvent::Kind::kCall) return;
      if (e.recv_type == "SlotPins") {
        if (e.callee_base == "Pin") {
          st.open.insert(e.line);
        } else if (e.callee_base.find("Unpin") != std::string::npos) {
          // One release event clears every open pin: distinguishing
          // which slot was released is beyond the model, and the
          // generous reading can only miss leaks, never invent one.
          st.open.clear();
        } else if (e.callee_base == "generation") {
          st.unvalidated = false;
        }
      }
      if (e.recv_type == "PinGuard" && e.callee_base == "Add") {
        st.open.clear();  // ownership moved to the guard's destructor
      }
      if ((e.callee_base == "ReadBlockAt" ||
           (e.callee_base == "Read" && EndsWith(e.recv_type, "Device"))) &&
          e.held_locks.empty()) {
        st.unvalidated = true;
      }
      if (e.callee_base == "Insert" &&
          e.recv_type.find("Cache") != std::string::npos && st.unvalidated) {
        Emit(e.line,
             "caching device bytes read after the slot lock was dropped "
             "without re-validating the slot generation: a concurrent "
             "free/reuse may have rewritten the slot, poisoning the "
             "cache with stale data");
      }
    }

    void ApplyRange(std::size_t first, std::size_t last, State& st) {
      if (st.returned || last < first) return;
      for (const BodyEvent& e : body.events) {
        if (e.tok >= first && e.tok <= last) Apply(e, st);
      }
    }

    void FlagLeaks(const State& st, std::size_t at_line, bool at_return) {
      for (const std::size_t pin_line : st.open) {
        Emit(at_return ? at_line : pin_line,
             "SlotPins::Pin at line " + std::to_string(pin_line) +
                 " is not released on this path: a leaked pin blocks "
                 "slot reclamation forever (unpin on every early "
                 "return, or hand the slot to a PinGuard)");
      }
    }

    void Merge(State& st, State&& then_st, State&& else_st) {
      if (then_st.returned && else_st.returned) {
        st.returned = true;
        return;
      }
      if (then_st.returned) {
        st = std::move(else_st);
        return;
      }
      if (else_st.returned) {
        st = std::move(then_st);
        return;
      }
      st = std::move(then_st);
      st.open.insert(else_st.open.begin(), else_st.open.end());
      st.unvalidated = st.unvalidated || else_st.unvalidated;
    }

    void WalkList(const std::vector<Stmt>& stmts, State& st) {
      for (const Stmt& s : stmts) {
        if (st.returned) return;
        WalkOne(s, st);
      }
    }

    void WalkOne(const Stmt& s, State& st) {
      switch (s.kind) {
        case Stmt::Kind::kBlock:
          WalkList(s.then_stmts, st);
          break;
        case Stmt::Kind::kIf: {
          ApplyRange(s.first, s.head_last, st);
          State then_st = st;
          State else_st = st;
          WalkList(s.then_stmts, then_st);
          if (s.has_else) WalkList(s.else_stmts, else_st);
          Merge(st, std::move(then_st), std::move(else_st));
          break;
        }
        case Stmt::Kind::kLoop: {
          if (s.head_last >= s.first) {
            ApplyRange(s.first, s.head_last, st);
          }
          // One symbolic iteration; the exit state merges the
          // zero-iteration path with the one-iteration path.
          State body_st = st;
          WalkList(s.body, body_st);
          if (!body_st.returned) {
            st.open.insert(body_st.open.begin(), body_st.open.end());
            st.unvalidated = st.unvalidated || body_st.unvalidated;
          }
          break;
        }
        case Stmt::Kind::kReturn:
          ApplyRange(s.first, s.last, st);
          FlagLeaks(st, s.line, /*at_return=*/true);
          st.returned = true;
          break;
        case Stmt::Kind::kBreak:
        case Stmt::Kind::kContinue:
          break;  // modelled as falling through (under-approximation)
        default:
          ApplyRange(s.first, s.last, st);
          break;
      }
    }
  };

  for (const BodySummary& body : a.bodies) {
    bool has_pin = false;
    for (const BodyEvent& e : body.events) {
      if (e.kind == BodyEvent::Kind::kCall && e.recv_type == "SlotPins" &&
          e.callee_base == "Pin") {
        has_pin = true;
        break;
      }
    }
    if (!has_pin || body.stmts.empty()) continue;
    Walker w{a.models[body.fn->file], body, per_file[body.fn->file], {}};
    Walker::State st;
    w.WalkList(body.stmts, st);
    if (!st.returned) w.FlagLeaks(st, 0, /*at_return=*/false);
  }
}

// ---------------------------------------------------------------------
// condvar-wait: waits must use the predicate overload or sit in a
// loop, every waiter of one CondVar must use the same mutex, and a
// notify holding only unrelated mutexes is flagged.

bool TokInLoop(const std::vector<Stmt>& stmts, std::size_t tok) {
  for (const Stmt& s : stmts) {
    if (tok < s.first || tok > s.last) continue;
    if (s.kind == Stmt::Kind::kLoop) return true;
    return TokInLoop(s.then_stmts, tok) || TokInLoop(s.else_stmts, tok) ||
           TokInLoop(s.body, tok);
  }
  return false;
}

void CheckCondvarWait(const Analysis& a,
                      std::vector<std::vector<Finding>>& per_file) {
  struct WaitSite {
    std::size_t file = 0;
    std::size_t line = 0;
    std::string mutex;
  };
  struct NotifySite {
    std::size_t file = 0;
    std::size_t line = 0;
    std::set<std::string> held;
  };
  std::map<std::string, std::vector<WaitSite>> waits;
  std::map<std::string, std::vector<NotifySite>> notifies;
  for (const BodySummary& body : a.bodies) {
    const FileModel& m = a.models[body.fn->file];
    for (const BodyEvent& e : body.events) {
      if (e.kind != BodyEvent::Kind::kCall || e.recv_type != "CondVar") {
        continue;
      }
      const std::string key = body.fn->cls + "::" + e.recv_name;
      if (e.callee_base == "Wait" || e.callee_base == "WaitFor") {
        // Wait(mu, pred) / WaitFor(mu, timeout, pred).
        const std::size_t pred_args = e.callee_base == "Wait" ? 2 : 3;
        if (e.call_args < pred_args && !TokInLoop(body.stmts, e.tok) &&
            !IsAllowed(m.raw, e.line, "condvar-wait")) {
          per_file[body.fn->file].push_back(
              {m.path, e.line, "condvar-wait",
               "CondVar::" + e.callee_base +
                   " without a predicate and outside any loop: spurious "
                   "wakeups make a single-shot wait return before the "
                   "guarded condition holds (use the predicate overload "
                   "or re-test the condition in a while loop)"});
        }
        waits[key].push_back({body.fn->file, e.line, e.cv_mutex});
      } else if (e.callee_base == "NotifyOne" ||
                 e.callee_base == "NotifyAll") {
        notifies[key].push_back({body.fn->file, e.line, e.held_locks});
      }
    }
  }
  for (const auto& [key, sites] : waits) {
    std::set<std::string> mutexes;
    for (const WaitSite& w : sites) {
      if (!w.mutex.empty()) mutexes.insert(w.mutex);
    }
    if (mutexes.size() > 1) {
      for (const WaitSite& w : sites) {
        const FileModel& m = a.models[w.file];
        if (IsAllowed(m.raw, w.line, "condvar-wait")) continue;
        per_file[w.file].push_back(
            {m.path, w.line, "condvar-wait",
             "CondVar '" + key + "' is waited on under " +
                 std::to_string(mutexes.size()) +
                 " different mutexes across the project: wait/notify "
                 "ordering is only defined when every waiter pairs the "
                 "CondVar with the same mutex"});
      }
    }
    const auto nit = notifies.find(key);
    if (nit == notifies.end() || mutexes.empty()) continue;
    for (const NotifySite& n : nit->second) {
      if (n.held.empty()) continue;  // notify after unlock: legal
      bool overlaps = false;
      for (const std::string& h : n.held) {
        if (mutexes.count(h) > 0) overlaps = true;
      }
      if (overlaps) continue;
      const FileModel& m = a.models[n.file];
      if (IsAllowed(m.raw, n.line, "condvar-wait")) continue;
      per_file[n.file].push_back(
          {m.path, n.line, "condvar-wait",
           "notify of CondVar '" + key +
               "' holds only mutexes no waiter of this CondVar uses: "
               "the guarded-state handoff to the waiters is "
               "unsynchronized (update the state under the waiters' "
               "mutex before notifying)"});
    }
  }
}

// ---------------------------------------------------------------------
// thread-lifecycle: a class owning a std::thread must reach a join on
// its destructor path (and on Close, when it has one) — a joinable
// std::thread destroyed without join calls std::terminate.

void CheckThreadLifecycle(const Analysis& a,
                          std::vector<std::vector<Finding>>& per_file) {
  for (const auto& [cls, members] : a.index.thread_members) {
    const std::string dtor_q = cls + "::~" + cls;
    const auto it = a.index.by_qname.find(dtor_q);
    if (it == a.index.by_qname.end()) {
      // No destructor declared at all: the implicit one destroys a
      // possibly-joinable std::thread, which is std::terminate.
      for (const ThreadMember& tm : members) {
        const FileModel& m = a.models[tm.file];
        if (IsAllowed(m.raw, tm.line, "thread-lifecycle")) continue;
        per_file[tm.file].push_back(
            {m.path, tm.line, "thread-lifecycle",
             "class '" + cls + "' owns std::thread '" + tm.name +
                 "' but declares no destructor: destroying the object "
                 "while the thread is joinable calls std::terminate "
                 "(join or stop the thread in a destructor)"});
      }
      continue;
    }
    const FunctionInfo* dtor_body = nullptr;
    for (const FunctionInfo* fn : it->second) {
      if (fn->has_body) dtor_body = fn;
    }
    // Declaration-only destructor (defined outside the scanned roots,
    // or defaulted): skipped — an under-approximation.
    if (dtor_body != nullptr && a.index.may_join.count(dtor_q) == 0) {
      const FileModel& m = a.models[dtor_body->file];
      if (!IsAllowed(m.raw, dtor_body->line, "thread-lifecycle")) {
        per_file[dtor_body->file].push_back(
            {m.path, dtor_body->line, "thread-lifecycle",
             "destructor of '" + cls +
                 "' never reaches a join of std::thread '" +
                 members.front().name +
                 "': a still-joinable thread aborts the process via "
                 "std::terminate, and a detached one keeps touching "
                 "freed members"});
      }
    }
    // A Close method is a shutdown path and owes the same join.
    const std::string close_q = cls + "::Close";
    const auto cit = a.index.by_qname.find(close_q);
    if (cit == a.index.by_qname.end() ||
        a.index.may_join.count(close_q) > 0) {
      continue;
    }
    for (const FunctionInfo* fn : cit->second) {
      if (!fn->has_body) continue;
      const FileModel& m = a.models[fn->file];
      if (IsAllowed(m.raw, fn->line, "thread-lifecycle")) break;
      per_file[fn->file].push_back(
          {m.path, fn->line, "thread-lifecycle",
           "'" + close_q + "' shuts down a class owning std::thread '" +
               members.front().name +
               "' without reaching a join: the flusher keeps running "
               "against a closed object"});
      break;
    }
  }
}

// ---------------------------------------------------------------------
// Orchestration.

// Everything after the per-file model build: indexing, body scans,
// closures, derived sets. Split out so the incremental engine can feed
// cache-loaded models straight in.
Analysis AnalyzeModels(std::vector<FileModel> models) {
  Analysis a;
  a.models = std::move(models);
  for (std::size_t f = 0; f < a.models.size(); ++f) {
    for (FunctionInfo& fn : a.models[f].functions) fn.file = f;
  }
  a.index = BuildIndex(a.models);
  for (const FileModel& m : a.models) {
    for (const FunctionInfo& fn : m.functions) {
      if (!fn.has_body || fn.is_ctor) continue;
      a.bodies.push_back(AnalyzeBody(m, fn, a.index));
    }
  }
  FinishIndex(a.index, a.bodies);
  for (const std::string& q : a.index.may_append) {
    a.appender_bases.insert(BaseOf(q));
  }
  // A base name maps to mutators only when NO non-mutator shares it.
  std::set<std::string> non_mutator_bases;
  for (const auto& [qname, fns] : a.index.by_qname) {
    if (a.index.annotated_mutators.count(qname) == 0) {
      non_mutator_bases.insert(BaseOf(qname));
    }
  }
  for (const std::string& q : a.index.annotated_mutators) {
    const std::string base = BaseOf(q);
    if (non_mutator_bases.count(base) == 0) a.mutator_bases.insert(base);
  }
  for (const BodySummary& body : a.bodies) {
    CollectLockEdges(a, body.fn->file, body, a.lock_edges);
  }
  return a;
}

Analysis Analyze(std::vector<std::pair<std::string, std::string>> sources) {
  std::vector<FileModel> models;
  models.reserve(sources.size());
  for (auto& [path, content] : sources) {
    models.push_back(BuildFileModel(path, content));
  }
  return AnalyzeModels(std::move(models));
}

std::vector<Finding> RunRules(Analysis& a) {
  std::vector<std::vector<Finding>> per_file(a.models.size());
  for (std::size_t f = 0; f < a.models.size(); ++f) {
    const FileModel& m = a.models[f];
    std::vector<Finding>& out = per_file[f];
    if (IsFormatHeader(m.path)) {
      const PinIndex pins = CollectPins(m);
      CheckOnDiskPins(m, pins, out);
      CheckOnDiskFields(m, a.index, pins, out);
    }
    CheckVoidDiscards(m, out);
    CheckBannedCalls(m, out);
    CheckNamedLocks(m, out);
    CheckRawNew(m, out);
    if (IsRecoveryPath(m.path)) CheckRecoveryAsserts(m, out);
  }
  for (const BodySummary& body : a.bodies) {
    const FileModel& m = a.models[body.fn->file];
    if (!IsRecoveryPath(m.path)) {
      CheckCrashOrder(a, m, body, per_file[body.fn->file]);
    }
    CheckStatusFlow(a, m, body, per_file[body.fn->file]);
  }
  CheckLockOrder(a, per_file);
  CheckShardOrder(a, per_file);
  CheckAtomicOrder(a, per_file);
  CheckPinProtocol(a, per_file);
  CheckCondvarWait(a, per_file);
  CheckThreadLifecycle(a, per_file);
  CheckRecordCoverage(a, per_file);
  CheckFieldSymmetry(a, per_file);
  CheckDurableAck(a, per_file);
  std::vector<Finding> findings;
  for (std::vector<Finding>& f : per_file) {
    std::stable_sort(f.begin(), f.end(),
                     [](const Finding& x, const Finding& y) {
                       return std::tie(x.line, x.rule) <
                              std::tie(y.line, y.rule);
                     });
    findings.insert(findings.end(), std::make_move_iterator(f.begin()),
                    std::make_move_iterator(f.end()));
  }
  return findings;
}

// ---------------------------------------------------------------------
// .arulintignore: one glob per line relative to the ignore file's
// directory; '*' matches any run of characters (including '/'), '?'
// one character, '#' starts a comment, a trailing '/' ignores the
// subtree.

bool GlobMatch(std::string_view pattern, std::string_view text) {
  std::size_t p = 0, s = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (s < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[s])) {
      ++p;
      ++s;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = s;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      s = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

struct IgnoreFile {
  std::filesystem::path base;
  std::vector<std::string> patterns;
};

IgnoreFile LoadIgnore(const std::filesystem::path& root) {
  namespace fs = std::filesystem;
  IgnoreFile ignore;
  std::error_code ec;
  fs::path dir = fs::absolute(root, ec);
  if (ec) return ignore;
  while (true) {
    const fs::path candidate = dir / ".arulintignore";
    if (fs::exists(candidate, ec) && !ec) {
      ignore.base = dir;
      std::ifstream in(candidate);
      std::string line;
      while (std::getline(in, line)) {
        const std::size_t first = line.find_first_not_of(" \t");
        if (first == std::string::npos) continue;
        const std::size_t last = line.find_last_not_of(" \t\r");
        std::string pattern = line.substr(first, last - first + 1);
        if (pattern.empty() || pattern[0] == '#') continue;
        if (pattern.back() == '/') pattern += "*";
        ignore.patterns.push_back(std::move(pattern));
      }
      return ignore;
    }
    const fs::path parent = dir.parent_path();
    if (parent == dir) return ignore;
    dir = parent;
  }
}

bool Ignored(const IgnoreFile& ignore, const std::filesystem::path& file) {
  if (ignore.patterns.empty()) return false;
  std::error_code ec;
  const std::filesystem::path abs = std::filesystem::absolute(file, ec);
  if (ec) return false;
  const std::filesystem::path rel =
      std::filesystem::relative(abs, ignore.base, ec);
  if (ec) return false;
  const std::string rel_str = rel.generic_string();
  for (const std::string& pattern : ignore.patterns) {
    if (GlobMatch(pattern, rel_str)) return true;
  }
  return false;
}

}  // namespace

std::string FormatFinding(const Finding& finding) {
  std::ostringstream os;
  os << finding.file << ":" << finding.line << ": [" << finding.rule << "] "
     << finding.message;
  return os.str();
}

std::string StripCommentsAndStrings(std::string_view source) {
  std::string out;
  out.reserve(source.size());
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
  };
  State state = State::kCode;
  for (std::size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    const char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   source[i - 1])) &&
                               source[i - 1] != '_'))) {
          // Raw string literal R"delim( ... )delim": no escapes inside,
          // ends only at the exact close sequence.
          std::size_t d = i + 2;
          while (d < source.size() && source[d] != '(') ++d;
          const std::string close =
              ")" + std::string(source.substr(i + 2, d - (i + 2))) + "\"";
          std::size_t end = source.find(close, d);
          if (end == std::string_view::npos) end = source.size();
          const std::size_t stop =
              std::min(source.size(), end + close.size());
          for (std::size_t k = i; k < stop; ++k) {
            out += source[k] == '\n' ? '\n' : ' ';
          }
          i = stop - 1;
        } else if (c == '"') {
          state = State::kString;
          out += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<Finding> CheckSource(const std::string& path,
                                 std::string_view content) {
  Analysis a = Analyze({{path, std::string(content)}});
  return RunRules(a);
}

std::vector<Finding> CheckFile(const std::string& path) {
  return CheckFiles({path});
}

std::vector<Finding> CheckFiles(const std::vector<std::string>& paths) {
  return CheckFiles(paths, CheckOptions{}, nullptr);
}

namespace {

bool ReadFileToString(const std::string& path, std::string& out) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return false;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  out = buffer.str();
  return true;
}

// <dir>/<hex content hash>.model — the key is the content (plus the
// format version folded into ContentHash), not the path, so identical
// files share one entry and renames still hit.
std::string CacheEntryPath(const std::string& dir, std::uint64_t hash) {
  std::ostringstream name;
  name << std::hex << hash;
  return (std::filesystem::path(dir) / (name.str() + ".model")).string();
}

// tmp-then-rename so a concurrent run never reads a torn entry; any
// failure just means the next run rebuilds.
void WriteCacheEntry(const std::string& path, const std::string& data) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out << data;
    if (!out) return;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) std::filesystem::remove(tmp, ec);
}

}  // namespace

std::vector<Finding> CheckFiles(const std::vector<std::string>& paths,
                                const CheckOptions& options,
                                EngineStats* stats) {
  EngineStats counters;
  const bool caching = !options.cache_dir.empty();
  if (caching) {
    std::error_code ec;
    std::filesystem::create_directories(options.cache_dir, ec);
  }
  std::vector<Finding> io_errors;
  std::vector<FileModel> models;
  for (const std::string& path : paths) {
    std::string content;
    if (!ReadFileToString(path, content)) {
      io_errors.push_back({path, 0, "io-error", "cannot open file"});
      continue;
    }
    ++counters.files;
    if (!caching) {
      models.push_back(BuildFileModel(path, content));
      continue;
    }
    const std::string entry =
        CacheEntryPath(options.cache_dir, ContentHash(content));
    std::string serialized;
    FileModel cached;
    if (ReadFileToString(entry, serialized) &&
        DeserializeFileModel(path, content, serialized, cached)) {
      ++counters.cache_hits;
      models.push_back(std::move(cached));
      continue;
    }
    ++counters.cache_misses;
    models.push_back(BuildFileModel(path, content));
    WriteCacheEntry(entry, SerializeFileModel(models.back()));
  }
  Analysis a = AnalyzeModels(std::move(models));
  std::vector<Finding> findings = RunRules(a);
  findings.insert(findings.end(), io_errors.begin(), io_errors.end());
  if (!options.baseline_path.empty()) {
    if (options.update_baseline) {
      std::ofstream out(options.baseline_path, std::ios::trunc);
      for (const Finding& f : findings) out << FormatFinding(f) << "\n";
      counters.baseline_suppressed = findings.size();
      findings.clear();
    } else {
      std::set<std::string> accepted;
      std::ifstream in(options.baseline_path);
      std::string line;
      while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (!line.empty()) accepted.insert(line);
      }
      std::vector<Finding> kept;
      kept.reserve(findings.size());
      for (Finding& f : findings) {
        if (accepted.count(FormatFinding(f)) > 0) {
          ++counters.baseline_suppressed;
        } else {
          kept.push_back(std::move(f));
        }
      }
      findings = std::move(kept);
    }
  }
  if (stats != nullptr) *stats = counters;
  return findings;
}

std::vector<std::string> CollectFiles(const std::string& root) {
  namespace fs = std::filesystem;
  const IgnoreFile ignore = LoadIgnore(root);
  std::vector<std::string> files;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file()) continue;
    const std::string p = it->path().string();
    if (!EndsWith(p, ".h") && !EndsWith(p, ".cc")) continue;
    if (Ignored(ignore, it->path())) continue;
    files.push_back(p);
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<Finding> CheckTree(const std::string& root) {
  std::error_code ec;
  if (!std::filesystem::exists(root, ec) || ec) {
    return {{root, 0, "io-error", "cannot walk tree"}};
  }
  return CheckFiles(CollectFiles(root));
}

}  // namespace aru::arulint
