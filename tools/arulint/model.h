// Per-file syntactic model and project-wide index for arulint v2.
//
// The model is a C++-subset parse: enough structure to know, for every
// file, which functions exist (qualified name, parameters, annotation
// macros, body token range, whether the return type is Status/Result),
// which class members exist and what their declared types are, which
// structs with which fields appear at namespace scope, and which
// `using` aliases / fixed-underlying-type enums are in scope. It is
// deliberately NOT a compiler front-end: templates, overload sets and
// macros are approximated, and every approximation is chosen so that
// imprecision produces *missed* findings, never false ones (see
// docs/STATIC_ANALYSIS.md for the catalogue of approximations).
//
// A ProjectIndex merges the models of every file in one lint
// invocation, so rules that need cross-file knowledge (annotation on a
// declaration in a header, the lock graph spanning src/) see the whole
// picture.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "tools/arulint/lexer.h"

namespace aru::arulint {

struct Param {
  std::string name;
  std::string type_head;  // last type identifier, smart pointers unwrapped
  bool is_ref = false;
  bool is_const = false;
};

struct FunctionInfo {
  std::size_t file = 0;  // index into the model list owning this entry
  std::size_t line = 0;  // line of the function name
  std::string cls;       // enclosing / qualifying class ("" for free)
  std::string base;      // unqualified name (the class name for a dtor)
  std::string qname;     // "Cls::base", "base", or "Cls::~Cls"
  bool returns_status = false;  // Status / Result<...> / StatusOr<...>
  bool is_ctor = false;
  bool is_dtor = false;
  bool mutates_tables = false;   // ARU_MUTATES_TABLES on this decl/def
  bool appends_summary = false;  // ARU_APPENDS_SUMMARY on this decl/def
  bool encodes_record = false;   // ARU_ENCODES_RECORD on this decl/def
  bool decodes_record = false;   // ARU_DECODES_RECORD on this decl/def
  bool has_body = false;
  std::size_t body_begin = 0;  // token index of the body "{"
  std::size_t body_end = 0;    // token index of the matching "}"
  std::vector<Param> params;
};

// Memory-order discipline declared on a std::atomic (see
// util/protocol_annotations.h and the atomic-order rule).
enum class AtomicAnn {
  kNone,      // unannotated: flagged
  kCounter,   // ARU_ATOMIC_COUNTER: relaxed ops legal
  kPublishes  // ARU_ATOMIC_PUBLISHES(what): acquire/release required
};

// One std::atomic declaration: a class member, a namespace-scope
// global (cls empty), or a function-local static (recorded on the
// body's summary instead of the file model).
struct AtomicDecl {
  std::size_t file = 0;  // set when merged into the ProjectIndex
  std::size_t line = 0;
  std::string cls;
  std::string name;
  AtomicAnn ann = AtomicAnn::kNone;
};

// A std::thread-typed class member (thread-lifecycle rule).
struct ThreadMember {
  std::size_t file = 0;  // set when merged into the ProjectIndex
  std::size_t line = 0;
  std::string cls;
  std::string name;
};

struct FieldInfo {
  std::size_t line = 0;
  std::string name;
  std::string type_head;
  bool is_pointer = false;
  bool is_reference = false;
  std::size_t array_len = 1;  // [N] multiplier; 1 when not an array
};

struct StructInfo {
  std::size_t line = 0;  // line of the `struct` keyword
  std::string name;
  bool namespace_scope = false;  // not nested inside another class
  bool fields_parsed = true;     // false when a member defeated the parser
  std::vector<FieldInfo> fields;
};

// One enumerator of a named enum (record-coverage keys off the
// enumerators of `RecordType`).
struct Enumerator {
  std::size_t line = 0;
  std::string name;
};

// A named enum with its enumerator list. The underlying-type map in
// FileModel::enums stays as-is (on-disk-field uses it); this carries
// the per-enumerator detail the symmetry rules need.
struct EnumDef {
  std::size_t file = 0;  // set when merged into the ProjectIndex
  std::size_t line = 0;  // line of the enum name
  std::string name;
  std::string underlying;  // "" when none declared
  std::vector<Enumerator> enumerators;
};

struct FileModel {
  std::string path;
  std::vector<std::string> raw;   // raw source lines (comments intact)
  std::vector<std::string> code;  // stripped source lines
  std::vector<Token> tokens;      // lexed from the stripped source
  std::vector<FunctionInfo> functions;  // declarations and definitions
  std::vector<StructInfo> structs;      // `struct` keyword only
  // class name -> member name -> declared type head.
  std::map<std::string, std::map<std::string, std::string>> members;
  std::map<std::string, std::string> aliases;  // using X = <head>;
  std::map<std::string, std::string> enums;    // enum X : <head> ("" if none)
  std::vector<EnumDef> enum_defs;              // named enums, per enumerator
  std::vector<AtomicDecl> atomics;             // member / global atomics
  std::vector<ThreadMember> thread_members;    // std::thread members
};

// Parses one file. `content` is the raw source.
FileModel BuildFileModel(const std::string& path, std::string_view content);

// --- Model cache (the incremental engine) -------------------------------
//
// A FileModel is a pure function of the file content, so it can be
// serialized once and reloaded while the content hash matches. The
// format is line-oriented text; bump kModelCacheVersion whenever the
// model's shape changes so stale entries fall back to a rebuild.

inline constexpr std::string_view kModelCacheVersion = "arulint-model-v4";

// FNV-1a over the version string + content; the cache key.
std::uint64_t ContentHash(std::string_view content);

// Serializes everything BuildFileModel derives except `path`, `raw`
// and `code` (the caller re-splits those from the content it already
// read — cheaper than storing every source line twice).
std::string SerializeFileModel(const FileModel& model);

// Rebuilds a FileModel from SerializeFileModel output. `path` and
// `content` come from the current read. Returns false (leaving `out`
// unspecified) on any mismatch — caller falls back to BuildFileModel.
bool DeserializeFileModel(const std::string& path, std::string_view content,
                          std::string_view serialized, FileModel& out);

struct ProjectIndex {
  const std::vector<FileModel>* models = nullptr;
  // qname -> every FunctionInfo (decl or def) carrying that name.
  std::map<std::string, std::vector<const FunctionInfo*>> by_qname;
  // base name -> count of status / non-status entries (for resolving
  // calls whose receiver type is unknown).
  std::map<std::string, std::pair<std::size_t, std::size_t>> base_status;
  // class -> member -> type head, merged across files.
  std::map<std::string, std::map<std::string, std::string>> members;
  std::map<std::string, std::string> aliases;
  std::map<std::string, std::string> enums;
  // qnames whose decl or def carries the annotation.
  std::set<std::string> annotated_appenders;
  std::set<std::string> annotated_mutators;
  std::set<std::string> annotated_encoders;
  std::set<std::string> annotated_decoders;
  // Named enums merged across files (file index set).
  std::vector<EnumDef> enum_defs;
  // Transitive closure: qnames that (may) reach an annotated appender.
  std::set<std::string> may_append;
  // qname -> transitive lock keys the function may acquire. The mapped
  // bool is true when every known acquisition of that key (direct or
  // through callees) is shared-mode (ReaderMutexLock); one exclusive
  // acquisition anywhere turns it false.
  std::map<std::string, std::map<std::string, bool>> may_acquire;
  // Every std::atomic member / global across the project (atomic-order).
  std::vector<AtomicDecl> atomics;
  // class -> its std::thread members (thread-lifecycle).
  std::map<std::string, std::vector<ThreadMember>> thread_members;
  // Transitive closure: qnames whose body (may) reach a .join() call.
  std::set<std::string> may_join;

  bool ReturnsStatus(const std::string& qname) const;
  // Declared type of Class::member, "" when unknown.
  std::string MemberType(const std::string& cls,
                         const std::string& member) const;
  bool IsTableType(const std::string& type_head) const {
    return type_head == "BlockMap" || type_head == "ListTable" ||
           type_head == "ShardedBlockMap" || type_head == "ShardedListTable";
  }
};

// Everything a body scan learns that rules need. Events keep the
// body's linear statement order, which is the dominance approximation:
// "append A dominates mutation M" is modelled as "A's event precedes
// M's event in the same body".
struct BodyEvent {
  enum class Kind {
    kCall,      // any call expression
    kMutation,  // table mutator method / assignment on a real table
    kAcquire,   // MutexLock / WriterMutexLock / ReaderMutexLock
  };
  Kind kind = Kind::kCall;
  std::size_t line = 0;
  std::size_t tok = 0;  // token index of the event head (for Stmt lookup)
  // kCall: resolution of the callee.
  std::string callee_qname;  // "" when unresolved
  std::string callee_base;
  // kCall: receiver of a member call, when a typed local / member /
  // implicit-this receiver could be resolved ("" otherwise).
  std::string recv_type;
  std::string recv_name;
  // kCall on an atomic op: an argument names memory_order_relaxed.
  bool atomic_relaxed = false;
  // kCall on CondVar::Wait / WaitFor: resolved key of the mutex passed
  // as the first argument ("" when unresolved).
  std::string cv_mutex;
  // kCall: number of top-level arguments in the call's paren group.
  std::size_t call_args = 0;
  bool stmt_bare = false;       // entire statement is this call
  bool real_table_arg = false;  // an argument names a real table
  bool implicit_this = false;   // bare call on the enclosing class
  std::set<std::string> held_locks;  // lock keys held at this point
  // Subset of held_locks held ONLY in shared mode at this point (a key
  // also held exclusively in any enclosing scope is excluded).
  std::set<std::string> held_shared;
  // kMutation: what was mutated.
  std::string table_expr;
  // kAcquire: the lock key and mode.
  std::string lock_key;
  bool acquire_shared = false;  // ReaderMutexLock (shared-mode) site
};

struct StatusLocal {
  std::size_t line = 0;
  std::string name;
  bool used_later = false;
};

// A non-call member access `recv.member` / `recv->member` on a
// receiver whose type resolved through locals / params / members.
// Field-symmetry compares the accesses made inside encoder bodies with
// those made inside decoder bodies, per receiver type.
struct MemberAccess {
  std::size_t line = 0;
  std::string recv_type;
  std::string member;
};

// Statement tree over a function body: just enough control-flow shape
// for path-sensitive rules (pin-protocol) and loop-ancestry queries
// (condvar-wait). `switch` bodies are kept opaque (one kSimple) and
// break/continue are recorded but treated as no-ops by walkers — both
// under-approximations that can only miss findings.
struct Stmt {
  enum class Kind {
    kSimple,    // one `;`-terminated statement (incl. opaque constructs)
    kBlock,     // bare { ... }
    kIf,        // if (...) then [else ...]
    kLoop,      // while / for / do-while
    kReturn,    // return ...;
    kBreak,
    kContinue,
  };
  Kind kind = Kind::kSimple;
  std::size_t line = 0;
  std::size_t first = 0;      // first token of the statement
  std::size_t last = 0;       // last token (the `;` or closing `}`)
  std::size_t head_last = 0;  // kIf/kLoop: last token of the condition
  bool has_else = false;      // kIf
  std::vector<Stmt> then_stmts;  // kIf then-branch / kBlock contents
  std::vector<Stmt> else_stmts;  // kIf else-branch
  std::vector<Stmt> body;        // kLoop body
};

struct BodySummary {
  const FunctionInfo* fn = nullptr;
  std::vector<BodyEvent> events;
  std::vector<StatusLocal> status_locals;
  // Function-local static atomics declared in this body (atomic-order).
  std::vector<AtomicDecl> atomic_locals;
  // Typed non-call member accesses in this body (field-symmetry).
  std::vector<MemberAccess> member_accesses;
  // Statement tree of the body (empty when the body failed to parse).
  std::vector<Stmt> stmts;
};

// Scans one function body (model.tokens[fn.body_begin..body_end]).
BodySummary AnalyzeBody(const FileModel& model, const FunctionInfo& fn,
                        const ProjectIndex& index);

// Builds the merged index (without closures); FinishIndex computes the
// may_append / may_acquire closures from the body summaries.
ProjectIndex BuildIndex(const std::vector<FileModel>& models);
void FinishIndex(ProjectIndex& index, const std::vector<BodySummary>& bodies);

}  // namespace aru::arulint
