// arulint: project-invariant checker for the ARU/LLD sources.
//
// The compiler proves lock discipline (thread annotations) and memory
// errors (sanitizers); arulint covers the invariants neither can see,
// all of which trace back to crash atomicity:
//
//   on-disk-pin      every on-disk struct (lld/layout.h, lld/summary.h,
//                    lld/checkpoint.h, minixfs/format.h) is trivially
//                    copyable and has a static_assert pinning its byte
//                    size — silent layout drift corrupts recovery of
//                    existing disk images;
//   status-discard   a `(void)`-discarded call must carry a comment
//                    justifying why the Status does not matter;
//   banned-call      no rand()/time(nullptr) (determinism: crash tests
//                    replay exact schedules) and no raw `new` outside
//                    smart-pointer construction;
//   recovery-assert  lld_recovery.cc / lld_consistency.cc never assert:
//                    they consume disk-derived data, and corruption must
//                    surface as StatusCode::kCorruption, not abort().
//
// Suppression: a comment `// arulint: allow(<rule>) <reason>` on the
// flagged line or up to three lines above it silences that rule there.
//
// The checks are lexical (no compiler front-end): comments and string
// literals are blanked before pattern matching, so the rules see only
// code. See docs/STATIC_ANALYSIS.md for the catalogue and rationale.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace aru::arulint {

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;

  friend bool operator==(const Finding&, const Finding&) = default;
};

// "file:line: [rule] message"
std::string FormatFinding(const Finding& finding);

// Replaces comments, string literals and character literals with
// spaces, preserving line structure. Exposed for tests.
std::string StripCommentsAndStrings(std::string_view source);

// Runs every rule applicable to `path` (rules key on the basename /
// path suffix) over `content`. Findings are ordered by line.
std::vector<Finding> CheckSource(const std::string& path,
                                 std::string_view content);

// Reads and checks one file; IO failures are reported as a finding on
// line 0 with rule "io-error".
std::vector<Finding> CheckFile(const std::string& path);

// Recursively checks every .h/.cc file under `root`, in sorted order.
std::vector<Finding> CheckTree(const std::string& root);

}  // namespace aru::arulint
