// arulint: flow-aware project-invariant checker for the ARU/LLD
// sources.
//
// The compiler proves lock discipline (thread annotations) and memory
// errors (sanitizers); arulint covers the invariants neither can see,
// all of which trace back to crash atomicity. v2 parses a C++ subset
// (tokenizer + scope tracking + per-function statement model, see
// tools/arulint/model.h) so the rules reason about functions, call
// paths and ordering instead of single lines:
//
//   crash-order      every path that mutates the block-number map or
//                    list table must first append the summary/commit
//                    record describing it (the paper's write-ordering
//                    protocol), or be annotated ARU_MUTATES_TABLES so
//                    the obligation moves to its callers;
//   lock-order       the Mutex acquisition graph derived from
//                    MutexLock sites must be acyclic;
//   shard-order      nested acquisitions of elements of one lock
//                    array (sharded-table locks, `shards_[i].mu`)
//                    must be provably ascending: both indices integer
//                    literals with acquired > held — anything else is
//                    the AB/BA deadlock lock-order's graph cannot see;
//   status-flow      a Status/Result-returning call must be returned,
//                    checked, or (void)-discarded with justification;
//                    a Status local must be read after initialization;
//   on-disk-pin      every on-disk struct in a format header is
//                    trivially copyable and has a static_assert
//                    pinning its byte size;
//   on-disk-field    fields of pinned on-disk structs are fixed-width
//                    integers / wrappers with no implicit padding, no
//                    bool/pointers/size_t;
//   banned-call      no rand()/time(nullptr) (determinism: crash tests
//                    replay exact schedules) and no raw `new` outside
//                    smart-pointer construction (raw-new);
//   named-lock       every Mutex/SharedMutex is constructed with a
//                    site-name string so contended waits attribute to
//                    the per-site aru_lock_* metrics;
//   recovery-assert  lld_recovery.cc / lld_consistency.cc never assert:
//                    they consume disk-derived data, and corruption must
//                    surface as StatusCode::kCorruption, not abort().
//
// v3 adds a path-sensitive statement model (branches, early returns,
// loops — see Stmt in tools/arulint/model.h) and four
// concurrency-protocol typestate families:
//
//   atomic-order     every std::atomic carries ARU_ATOMIC_COUNTER or
//                    ARU_ATOMIC_PUBLISHES(what); memory_order_relaxed
//                    operations on a publishing atomic are flagged;
//   pin-protocol     every SlotPins::Pin is released on all paths out
//                    of the body (no leaks on early returns), and
//                    device bytes read with no lock held pass a slot
//                    generation re-validation before they are cached;
//   condvar-wait     CondVar::Wait/WaitFor uses the predicate overload
//                    or sits in a loop; all waiters of one CondVar use
//                    the same mutex; a notify holding only unrelated
//                    mutexes is flagged;
//   thread-lifecycle a class owning a std::thread reaches a join on
//                    its destructor path (and on Close, if it has one).
//
// v4 adds the recovery-symmetry families — the encode/decode seam that
// decides whether recovery can actually replay what the runtime
// persisted — plus an incremental engine (content-hash model cache,
// finding baseline):
//
//   record-coverage  every enumerator of a `RecordType` enum has an
//                    encode arm inside an ARU_ENCODES_RECORD function
//                    reachable from an ARU_APPENDS_SUMMARY appender, a
//                    decode arm inside an ARU_DECODES_RECORD function,
//                    and (when the record struct exists) an apply site
//                    in a recovery-path file;
//   field-symmetry   for each pinned on-disk record struct, every
//                    non-reserved field the encoder bodies write is
//                    read back by the decoder bodies (and vice versa);
//   durable-ack      a body that gates on `durable_commits` and acks a
//                    commit (arus_committed increment) must reach a
//                    WaitDurable call on every path before the ack.
//
// Suppression: a comment `// arulint: allow(<rule>) <reason>` on the
// flagged line or up to three lines above it silences that rule there.
//
// See docs/STATIC_ANALYSIS.md for the catalogue, the annotation
// macros, and the approximations the model makes.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace aru::arulint {

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;

  friend bool operator==(const Finding&, const Finding&) = default;
};

// "file:line: [rule] message"
std::string FormatFinding(const Finding& finding);

// Replaces comments, string literals (including raw strings) and
// character literals with spaces, preserving line structure. Exposed
// for tests.
std::string StripCommentsAndStrings(std::string_view source);

// Runs every rule over `content` as a single-file project (rules that
// need cross-file knowledge see only this file). Findings are ordered
// by line.
std::vector<Finding> CheckSource(const std::string& path,
                                 std::string_view content);

// Reads and checks one file; IO failures are reported as a finding on
// line 0 with rule "io-error".
std::vector<Finding> CheckFile(const std::string& path);

// Checks a set of files as ONE project: annotations, Status return
// types, member declarations and the lock graph are indexed across all
// of them before any rule runs. Findings are ordered by (file, line).
std::vector<Finding> CheckFiles(const std::vector<std::string>& paths);

// Per-run counters for the incremental engine (--stats).
struct EngineStats {
  std::size_t files = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t baseline_suppressed = 0;
};

// Engine knobs for CheckFiles.
struct CheckOptions {
  // When non-empty: directory holding serialized per-file models keyed
  // by content hash. Unchanged files skip re-tokenization/re-modeling;
  // missing/stale/corrupt entries rebuild and rewrite. Created on
  // first use.
  std::string cache_dir;
  // When non-empty: a file of accepted findings (one FormatFinding
  // line each); findings whose formatted line appears there are
  // suppressed from the result.
  std::string baseline_path;
  // With baseline_path: instead of suppressing, (over)write the
  // baseline file with the current findings and suppress everything.
  bool update_baseline = false;
};

// CheckFiles with the incremental engine. `stats`, when non-null,
// receives the run's counters.
std::vector<Finding> CheckFiles(const std::vector<std::string>& paths,
                                const CheckOptions& options,
                                EngineStats* stats);

// Every .h/.cc under `root` (sorted), minus paths matched by the
// nearest .arulintignore found in `root` or a parent directory.
std::vector<std::string> CollectFiles(const std::string& root);

// CheckFiles over CollectFiles(root).
std::vector<Finding> CheckTree(const std::string& root);

// Serializes findings as a SARIF 2.1.0 document (one run, one rule
// entry per distinct rule id).
std::string SarifReport(const std::vector<Finding>& findings);

struct RuleInfo {
  std::string id;
  std::string description;
};

// Every rule the tool can emit, in catalogue order (--list-rules,
// --stats).
std::vector<RuleInfo> RuleCatalog();

}  // namespace aru::arulint
