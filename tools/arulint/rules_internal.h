// Internal seam between the rule translation units (arulint.cc,
// symmetry.cc): the whole-analysis state and the helpers both sides
// share. Not part of the public arulint.h surface.
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "tools/arulint/arulint.h"
#include "tools/arulint/model.h"

namespace aru::arulint {

// --- Shared helpers (defined in arulint.cc) -----------------------------

bool EndsWith(std::string_view s, std::string_view suffix);

// True if raw line `line` (1-based) or one of the lookback lines above
// it carries `// arulint: allow(<rule>)`.
bool IsAllowed(const std::vector<std::string>& raw, std::size_t line,
               std::string_view rule);

// Format headers hold on-disk layouts (layout.h / summary.h /
// checkpoint.h / format.h by basename).
bool IsFormatHeader(const std::string& path);

// lld_recovery.cc / lld_consistency.cc.
bool IsRecoveryPath(const std::string& path);

// Unqualified name of a qname.
std::string BaseOf(const std::string& qname);

// static_assert pins present in one file (on-disk-pin / field-symmetry).
struct PinIndex {
  std::set<std::string> trivially_copyable;
  std::set<std::string> sizeof_pinned;
};

PinIndex CollectPins(const FileModel& m);

// --- Whole-analysis state -----------------------------------------------

struct LockEdge {
  std::size_t file = 0;  // model index of the edge's site
  std::size_t line = 0;
  std::string held;
  std::string acquired;
  bool held_shared = false;      // held only via ReaderMutexLock
  bool acquired_shared = false;  // acquisition is ReaderMutexLock
};

struct Analysis {
  std::vector<FileModel> models;
  ProjectIndex index;
  std::vector<BodySummary> bodies;
  // Derived helper sets for the crash-order fallback resolution.
  std::set<std::string> appender_bases;  // bases of may_append qnames
  std::set<std::string> mutator_bases;   // bases that ONLY name mutators
  std::vector<LockEdge> lock_edges;
};

// --- v4 recovery-symmetry rules (defined in symmetry.cc) ----------------

void CheckRecordCoverage(const Analysis& a,
                         std::vector<std::vector<Finding>>& per_file);
void CheckFieldSymmetry(const Analysis& a,
                        std::vector<std::vector<Finding>>& per_file);
void CheckDurableAck(const Analysis& a,
                     std::vector<std::vector<Finding>>& per_file);

}  // namespace aru::arulint
