# Runs arulint --sarif over the seeded-violation fixtures and checks
# the report: the run must find violations (exit 1), the output must be
# valid JSON (python3, when available), and every rule family seeded in
# the fixtures must appear.
#
# Inputs: -DARULINT=<path> -DFIXTURES=<dir> -DOUT=<file>
execute_process(
  COMMAND ${ARULINT} --root ${FIXTURES}/bad --sarif ${OUT}
  RESULT_VARIABLE rc
  OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "arulint over seeded fixtures exited ${rc}, want 1")
endif()
if(NOT EXISTS ${OUT})
  message(FATAL_ERROR "arulint did not write ${OUT}")
endif()

file(READ ${OUT} sarif)
foreach(needle
        "\"version\": \"2.1.0\""
        "\"name\": \"arulint\""
        "crash-order" "lock-order" "shard-order" "named-lock" "status-flow"
        "on-disk-pin" "on-disk-field" "banned-call" "raw-new"
        "recovery-assert" "atomic-order" "pin-protocol"
        "condvar-wait" "thread-lifecycle" "record-coverage"
        "field-symmetry" "durable-ack")
  string(FIND "${sarif}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "SARIF report is missing '${needle}'")
  endif()
endforeach()

find_program(PYTHON3 python3)
if(PYTHON3)
  execute_process(
    COMMAND ${PYTHON3} -m json.tool ${OUT}
    RESULT_VARIABLE json_rc
    OUTPUT_QUIET ERROR_VARIABLE json_err)
  if(NOT json_rc EQUAL 0)
    message(FATAL_ERROR "SARIF report is not valid JSON: ${json_err}")
  endif()
endif()
