// Body scan: extracts the ordered event stream (calls, table
// mutations, lock acquisitions) and Status-local usage from one
// function body. Rules replay these events; the linear token order of
// the events is the dominance approximation described in
// docs/STATIC_ANALYSIS.md.
#include <map>
#include <set>
#include <string>

#include "tools/arulint/model.h"

namespace aru::arulint {
namespace {

bool IsCallKeyword(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "return" || s == "sizeof" || s == "alignof" ||
         s == "catch" || s == "assert" || s == "static_assert" ||
         s == "decltype" || s == "noexcept" || s == "alignas";
}

bool IsMutatorMethod(const std::string& s) {
  return s == "Set" || s == "Erase" || s == "Clear" || s == "FindMutable";
}

struct BodyScanner {
  const FileModel& m;
  const FunctionInfo& fn;
  const ProjectIndex& index;
  const std::vector<Token>& t;
  BodySummary out;

  // Locks held per open brace scope: (lock key, shared-mode).
  std::vector<std::vector<std::pair<std::string, bool>>> scopes;
  // Declared local name -> type head (seeded with the parameters).
  std::map<std::string, std::string> locals;
  // Expressions that denote the *real* tables this function is
  // responsible for: table-typed members of the enclosing class and
  // non-const table reference parameters. By-value table locals are
  // scratch copies and intentionally excluded.
  std::set<std::string> real_tables;
  std::size_t stmt_start = 0;  // token index of the current statement

  std::set<std::string> Held() const {
    std::set<std::string> held;
    for (const auto& scope : scopes) {
      for (const auto& [key, shared] : scope) held.insert(key);
    }
    return held;
  }

  // Keys held only in shared mode: an exclusive hold anywhere wins.
  std::set<std::string> HeldShared() const {
    std::set<std::string> shared_only;
    std::set<std::string> exclusive;
    for (const auto& scope : scopes) {
      for (const auto& [key, shared] : scope) {
        if (shared) {
          shared_only.insert(key);
        } else {
          exclusive.insert(key);
        }
      }
    }
    for (const std::string& key : exclusive) shared_only.erase(key);
    return shared_only;
  }

  std::string TypeOf(const std::string& name) const {
    const auto it = locals.find(name);
    if (it != locals.end()) return it->second;
    return index.MemberType(fn.cls, name);
  }

  void Seed() {
    for (const Param& p : fn.params) {
      if (p.name.empty()) continue;
      locals[p.name] = p.type_head;
      if (index.IsTableType(p.type_head) && p.is_ref && !p.is_const) {
        real_tables.insert(p.name);
      }
    }
    const auto cit = index.members.find(fn.cls);
    if (cit != index.members.end()) {
      for (const auto& [name, head] : cit->second) {
        if (index.IsTableType(head)) real_tables.insert(name);
      }
    }
  }

  // Matching close paren for t[open] == "(", bounded by the body.
  std::size_t CloseOf(std::size_t open) const {
    const std::size_t close = MatchForward(t, open);
    return close >= fn.body_end ? fn.body_end : close;
  }

  void Run() {
    Seed();
    for (std::size_t i = fn.body_begin; i <= fn.body_end && i < t.size();
         ++i) {
      const Token& tok = t[i];
      if (tok.Is("{")) {
        scopes.emplace_back();
        stmt_start = i + 1;
        continue;
      }
      if (tok.Is("}")) {
        if (!scopes.empty()) scopes.pop_back();
        stmt_start = i + 1;
        continue;
      }
      if (tok.Is(";")) {
        stmt_start = i + 1;
        continue;
      }
      if (!tok.IsIdent()) continue;
      if ((tok.text == "MutexLock" || tok.text == "WriterMutexLock" ||
           tok.text == "ReaderMutexLock") &&
          i + 2 < t.size() && t[i + 1].IsIdent() && t[i + 2].Is("(")) {
        i = HandleAcquire(i, /*shared=*/tok.text == "ReaderMutexLock");
        continue;
      }
      HandleLocalDecl(i);
      HandleMutation(i);
      if (i + 1 < t.size() && t[i + 1].Is("(") &&
          !IsCallKeyword(tok.text) &&
          tok.text.rfind("ARU_", 0) != 0) {
        HandleCall(i);
      }
    }
    MarkStatusLocalUse();
  }

  std::size_t HandleAcquire(std::size_t i, bool shared) {
    const std::size_t open = i + 2;
    const std::size_t close = CloseOf(open);
    BodyEvent e;
    e.kind = BodyEvent::Kind::kAcquire;
    e.line = t[i].line;
    e.held_locks = Held();
    e.held_shared = HeldShared();
    e.lock_key = ResolveLockExpr(open + 1, close);
    e.acquire_shared = shared;
    out.events.push_back(e);
    if (!scopes.empty() && !e.lock_key.empty()) {
      scopes.back().emplace_back(e.lock_key, shared);
    }
    return close;
  }

  std::string ResolveLockExpr(std::size_t first, std::size_t last) {
    std::size_t i = first;
    while (i < last && (t[i].Is("*") || t[i].Is("&") || t[i].Is("("))) ++i;
    if (i >= last || !t[i].IsIdent()) return JoinText(first, last);
    const std::string& head = t[i].text;
    if (i + 2 < last && (t[i + 1].Is("->") || t[i + 1].Is(".")) &&
        t[i + 2].IsIdent()) {
      const std::string type = TypeOf(head);
      if (!type.empty()) return type + "::" + t[i + 2].text;
      return JoinText(first, last);
    }
    if (i + 1 >= last || t[i + 1].Is(")")) {
      // Bare name: a member of the enclosing class, or a global.
      if (!fn.cls.empty() && !index.MemberType(fn.cls, head).empty()) {
        return fn.cls + "::" + head;
      }
      return head;
    }
    return JoinText(first, last);
  }

  std::string JoinText(std::size_t first, std::size_t last) const {
    std::string s;
    for (std::size_t i = first; i < last && i < t.size(); ++i) {
      s += t[i].text;
    }
    return s;
  }

  void HandleLocalDecl(std::size_t i) {
    // `Type name =|;|(|{` — also `...> name` after template args.
    if (i + 2 >= t.size() || !t[i + 1].IsIdent()) return;
    const std::string& next2 = t[i + 2].text;
    if (next2 != "=" && next2 != ";" && next2 != "(" && next2 != "{") return;
    const std::string& type = t[i].text;
    const std::string& name = t[i + 1].text;
    if (IsCallKeyword(type) || type == "const" || type == "auto" ||
        type == "else" || type == "do" || type == "new" ||
        type == "delete" || type == "case" || type == "goto" ||
        type == "co_return" || type == "throw" || type == "operator" ||
        type == "struct" || type == "typename" || type == "using") {
      return;
    }
    // `Status G();` is a function declaration, not a local.
    const bool empty_parens =
        next2 == "(" && i + 3 < t.size() && t[i + 3].Is(")");
    if (empty_parens) return;
    locals[name] = type;
    if (type == "Status") {
      out.status_locals.push_back({t[i + 1].line, name, false});
    }
  }

  void HandleMutation(std::size_t i) {
    if (real_tables.count(t[i].text) == 0) return;
    // Only a bare table expression counts (not `x.block_map_`).
    if (i > 0 && (t[i - 1].Is(".") || t[i - 1].Is("->") ||
                  t[i - 1].Is("::"))) {
      return;
    }
    if (i + 1 >= t.size()) return;
    bool mutation = false;
    if (t[i + 1].Is("=")) {
      mutation = true;  // whole-table assignment
    } else if ((t[i + 1].Is(".") || t[i + 1].Is("->")) && i + 3 < t.size() &&
               t[i + 2].IsIdent() && IsMutatorMethod(t[i + 2].text) &&
               t[i + 3].Is("(")) {
      mutation = true;
    }
    if (!mutation) return;
    BodyEvent e;
    e.kind = BodyEvent::Kind::kMutation;
    e.line = t[i].line;
    e.table_expr = t[i].text;
    e.held_locks = Held();
    e.held_shared = HeldShared();
    out.events.push_back(e);
  }

  void HandleCall(std::size_t i) {
    BodyEvent e;
    e.kind = BodyEvent::Kind::kCall;
    e.line = t[i].line;
    e.callee_base = t[i].text;
    e.held_locks = Held();
    e.held_shared = HeldShared();
    // Receiver resolution (conservative: unresolved stays "").
    std::string receiver_type;
    bool have_receiver = false;
    if (i >= 2 && (t[i - 1].Is(".") || t[i - 1].Is("->"))) {
      have_receiver = true;
      const Token& r = t[i - 2];
      if (r.IsIdent()) {
        receiver_type = r.text == "this" ? fn.cls : TypeOf(r.text);
      } else if (r.Is(")")) {
        // Chained off a static call: `X::F().G(...)` — treat the
        // receiver as X (heuristic for singleton accessors).
        std::size_t depth = 0;
        std::size_t j = i - 2;
        while (j > 0) {
          if (t[j].Is(")")) ++depth;
          if (t[j].Is("(")) {
            if (--depth == 0) break;
          }
          --j;
        }
        if (j >= 3 && t[j - 1].IsIdent() && t[j - 2].Is("::") &&
            t[j - 3].IsIdent()) {
          receiver_type = t[j - 3].text;
        }
      }
    } else if (i >= 2 && t[i - 1].Is("::") && t[i - 2].IsIdent()) {
      have_receiver = true;
      receiver_type = t[i - 2].text;
    }
    if (have_receiver) {
      if (!receiver_type.empty()) {
        const std::string qname = receiver_type + "::" + e.callee_base;
        if (index.by_qname.count(qname) > 0) e.callee_qname = qname;
      }
    } else {
      if (!fn.cls.empty() &&
          index.by_qname.count(fn.cls + "::" + e.callee_base) > 0) {
        e.callee_qname = fn.cls + "::" + e.callee_base;
        e.implicit_this = true;
      } else if (index.by_qname.count(e.callee_base) > 0) {
        e.callee_qname = e.callee_base;
      }
    }
    // Bare statement: the statement consists solely of this call.
    std::size_t chain_first = i;
    while (chain_first >= 2 &&
           (t[chain_first - 1].Is("::") || t[chain_first - 1].Is(".") ||
            t[chain_first - 1].Is("->")) &&
           t[chain_first - 2].IsIdent()) {
      chain_first -= 2;
    }
    const std::size_t close = CloseOf(i + 1);
    e.stmt_bare = chain_first == stmt_start && close + 1 < t.size() &&
                  t[close + 1].Is(";");
    // Does any argument name a real table?
    for (std::size_t a = i + 2; a < close; ++a) {
      if (t[a].IsIdent() && real_tables.count(t[a].text) > 0 &&
          (a == 0 || (!t[a - 1].Is(".") && !t[a - 1].Is("->") &&
                      !t[a - 1].Is("::")))) {
        e.real_table_arg = true;
        break;
      }
    }
    out.events.push_back(std::move(e));
  }

  void MarkStatusLocalUse() {
    for (StatusLocal& local : out.status_locals) {
      std::size_t decl_idx = fn.body_end;
      for (std::size_t i = fn.body_begin; i <= fn.body_end && i < t.size();
           ++i) {
        if (t[i].IsIdent() && t[i].text == local.name &&
            t[i].line == local.line && i > fn.body_begin &&
            t[i - 1].IsIdent()) {
          decl_idx = i;
          break;
        }
      }
      for (std::size_t i = decl_idx + 1;
           i <= fn.body_end && i < t.size(); ++i) {
        if (t[i].IsIdent() && t[i].text == local.name) {
          local.used_later = true;
          break;
        }
      }
    }
  }
};

}  // namespace

BodySummary AnalyzeBody(const FileModel& model, const FunctionInfo& fn,
                        const ProjectIndex& index) {
  BodyScanner scanner{model, fn, index, model.tokens, {}, {}, {}, {}, 0};
  scanner.out.fn = &fn;
  scanner.Run();
  return scanner.out;
}

}  // namespace aru::arulint
