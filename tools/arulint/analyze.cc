// Body scan: extracts the ordered event stream (calls, table
// mutations, lock acquisitions) and Status-local usage from one
// function body. Rules replay these events; the linear token order of
// the events is the dominance approximation described in
// docs/STATIC_ANALYSIS.md.
#include <map>
#include <set>
#include <string>

#include "tools/arulint/model.h"

namespace aru::arulint {
namespace {

bool IsCallKeyword(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "return" || s == "sizeof" || s == "alignof" ||
         s == "catch" || s == "assert" || s == "static_assert" ||
         s == "decltype" || s == "noexcept" || s == "alignas";
}

bool IsMutatorMethod(const std::string& s) {
  return s == "Set" || s == "Erase" || s == "Clear" ||
         s == "FindMutable" || s == "ApplyBatch" || s == "Load";
}

// std::atomic member functions whose memory-order argument the
// atomic-order rule inspects.
bool IsAtomicOp(const std::string& s) {
  return s == "load" || s == "store" || s == "exchange" ||
         s == "fetch_add" || s == "fetch_sub" || s == "fetch_and" ||
         s == "fetch_or" || s == "fetch_xor" ||
         s == "compare_exchange_weak" || s == "compare_exchange_strong";
}

struct BodyScanner {
  const FileModel& m;
  const FunctionInfo& fn;
  const ProjectIndex& index;
  const std::vector<Token>& t;
  BodySummary out;

  // Locks held per open brace scope: (lock key, shared-mode).
  std::vector<std::vector<std::pair<std::string, bool>>> scopes;
  // Declared local name -> type head (seeded with the parameters).
  std::map<std::string, std::string> locals;
  // Expressions that denote the *real* tables this function is
  // responsible for: table-typed members of the enclosing class and
  // non-const table reference parameters. By-value table locals are
  // scratch copies and intentionally excluded.
  std::set<std::string> real_tables;
  std::size_t stmt_start = 0;  // token index of the current statement

  std::set<std::string> Held() const {
    std::set<std::string> held;
    for (const auto& scope : scopes) {
      for (const auto& [key, shared] : scope) held.insert(key);
    }
    return held;
  }

  // Keys held only in shared mode: an exclusive hold anywhere wins.
  std::set<std::string> HeldShared() const {
    std::set<std::string> shared_only;
    std::set<std::string> exclusive;
    for (const auto& scope : scopes) {
      for (const auto& [key, shared] : scope) {
        if (shared) {
          shared_only.insert(key);
        } else {
          exclusive.insert(key);
        }
      }
    }
    for (const std::string& key : exclusive) shared_only.erase(key);
    return shared_only;
  }

  std::string TypeOf(const std::string& name) const {
    const auto it = locals.find(name);
    if (it != locals.end()) return it->second;
    return index.MemberType(fn.cls, name);
  }

  void Seed() {
    for (const Param& p : fn.params) {
      if (p.name.empty()) continue;
      locals[p.name] = p.type_head;
      if (index.IsTableType(p.type_head) && p.is_ref && !p.is_const) {
        real_tables.insert(p.name);
      }
    }
    const auto cit = index.members.find(fn.cls);
    if (cit != index.members.end()) {
      for (const auto& [name, head] : cit->second) {
        if (index.IsTableType(head)) real_tables.insert(name);
      }
    }
  }

  // Matching close paren for t[open] == "(", bounded by the body.
  std::size_t CloseOf(std::size_t open) const {
    const std::size_t close = MatchForward(t, open);
    return close >= fn.body_end ? fn.body_end : close;
  }

  void Run() {
    Seed();
    for (std::size_t i = fn.body_begin; i <= fn.body_end && i < t.size();
         ++i) {
      const Token& tok = t[i];
      if (tok.Is("{")) {
        scopes.emplace_back();
        stmt_start = i + 1;
        continue;
      }
      if (tok.Is("}")) {
        if (!scopes.empty()) scopes.pop_back();
        stmt_start = i + 1;
        continue;
      }
      if (tok.Is(";")) {
        stmt_start = i + 1;
        continue;
      }
      if (!tok.IsIdent()) continue;
      if (tok.text == "atomic" && i + 1 < t.size() && t[i + 1].Is("<")) {
        i = HandleAtomicLocal(i);
        continue;
      }
      if ((tok.text == "MutexLock" || tok.text == "WriterMutexLock" ||
           tok.text == "ReaderMutexLock") &&
          i + 2 < t.size() && t[i + 1].IsIdent() && t[i + 2].Is("(")) {
        i = HandleAcquire(i, /*shared=*/tok.text == "ReaderMutexLock");
        continue;
      }
      HandleLocalDecl(i);
      HandleMutation(i);
      HandleMemberAccess(i);
      if (i + 1 < t.size() && t[i + 1].Is("(") &&
          !IsCallKeyword(tok.text) &&
          tok.text.rfind("ARU_", 0) != 0) {
        HandleCall(i);
      }
    }
    MarkStatusLocalUse();
  }

  // A function-local std::atomic declaration (typically a static used
  // as a rate limiter). Records it for the atomic-order rule; returns
  // the index to resume scanning at (just past the declared name).
  std::size_t HandleAtomicLocal(std::size_t i) {
    std::size_t j = MatchForward(t, i + 1);  // close of the <...> group
    if (j >= fn.body_end || j >= t.size()) return i;
    AtomicDecl decl;
    decl.cls = fn.qname;  // display only: "declared inside <qname>"
    for (++j; j < fn.body_end && j < t.size(); ++j) {
      if (!t[j].IsIdent()) {
        if (t[j].Is("{") || t[j].Is("=") || t[j].Is(";") || t[j].Is("(")) {
          break;
        }
        continue;
      }
      const std::string& s = t[j].text;
      if (s.rfind("ARU_", 0) == 0) {
        if (s == "ARU_ATOMIC_COUNTER") decl.ann = AtomicAnn::kCounter;
        if (s == "ARU_ATOMIC_PUBLISHES") decl.ann = AtomicAnn::kPublishes;
        if (j + 1 < t.size() && t[j + 1].Is("(")) {
          j = MatchForward(t, j + 1);
        }
        continue;
      }
      decl.name = s;
      decl.line = t[j].line;
    }
    if (decl.name.empty()) return i;
    locals[decl.name] = "atomic";
    out.atomic_locals.push_back(std::move(decl));
    return j;
  }

  std::size_t HandleAcquire(std::size_t i, bool shared) {
    const std::size_t open = i + 2;
    const std::size_t close = CloseOf(open);
    BodyEvent e;
    e.kind = BodyEvent::Kind::kAcquire;
    e.line = t[i].line;
    e.tok = i;
    e.held_locks = Held();
    e.held_shared = HeldShared();
    e.lock_key = ResolveLockExpr(open + 1, close);
    e.acquire_shared = shared;
    out.events.push_back(e);
    if (!scopes.empty() && !e.lock_key.empty()) {
      scopes.back().emplace_back(e.lock_key, shared);
    }
    return close;
  }

  std::string ResolveLockExpr(std::size_t first, std::size_t last) {
    std::size_t i = first;
    while (i < last && (t[i].Is("*") || t[i].Is("&") || t[i].Is("("))) ++i;
    if (i >= last || !t[i].IsIdent()) return JoinText(first, last);
    const std::string& head = t[i].text;
    if (i + 2 < last && (t[i + 1].Is("->") || t[i + 1].Is(".")) &&
        t[i + 2].IsIdent()) {
      const std::string type = TypeOf(head);
      if (!type.empty()) return type + "::" + t[i + 2].text;
      return JoinText(first, last);
    }
    if (i + 1 >= last || t[i + 1].Is(")")) {
      // Bare name: a member of the enclosing class, or a global.
      if (!fn.cls.empty() && !index.MemberType(fn.cls, head).empty()) {
        return fn.cls + "::" + head;
      }
      return head;
    }
    return JoinText(first, last);
  }

  std::string JoinText(std::size_t first, std::size_t last) const {
    std::string s;
    for (std::size_t i = first; i < last && i < t.size(); ++i) {
      s += t[i].text;
    }
    return s;
  }

  void HandleLocalDecl(std::size_t i) {
    // `Type name =|;|(|{` — also `...> name` after template args.
    if (i + 2 >= t.size() || !t[i + 1].IsIdent()) return;
    const std::string& next2 = t[i + 2].text;
    if (next2 != "=" && next2 != ";" && next2 != "(" && next2 != "{") return;
    const std::string& type = t[i].text;
    const std::string& name = t[i + 1].text;
    if (IsCallKeyword(type) || type == "const" || type == "auto" ||
        type == "else" || type == "do" || type == "new" ||
        type == "delete" || type == "case" || type == "goto" ||
        type == "co_return" || type == "throw" || type == "operator" ||
        type == "struct" || type == "typename" || type == "using") {
      return;
    }
    // `Status G();` is a function declaration, not a local.
    const bool empty_parens =
        next2 == "(" && i + 3 < t.size() && t[i + 3].Is(")");
    if (empty_parens) return;
    locals[name] = type;
    if (type == "Status") {
      out.status_locals.push_back({t[i + 1].line, name, false});
    }
  }

  void HandleMutation(std::size_t i) {
    if (real_tables.count(t[i].text) == 0) return;
    // Only a bare table expression counts (not `x.block_map_`).
    if (i > 0 && (t[i - 1].Is(".") || t[i - 1].Is("->") ||
                  t[i - 1].Is("::"))) {
      return;
    }
    if (i + 1 >= t.size()) return;
    bool mutation = false;
    if (t[i + 1].Is("=")) {
      mutation = true;  // whole-table assignment
    } else if ((t[i + 1].Is(".") || t[i + 1].Is("->")) && i + 3 < t.size() &&
               t[i + 2].IsIdent() && IsMutatorMethod(t[i + 2].text) &&
               t[i + 3].Is("(")) {
      mutation = true;
    }
    if (!mutation) return;
    BodyEvent e;
    e.kind = BodyEvent::Kind::kMutation;
    e.line = t[i].line;
    e.tok = i;
    e.table_expr = t[i].text;
    e.held_locks = Held();
    e.held_shared = HeldShared();
    out.events.push_back(e);
  }

  // A non-call member access `recv.member` / `recv->member` whose
  // receiver type resolves (field-symmetry). Chained accesses
  // (`a.b.c`) contribute only the head link — the intermediate type is
  // unknown, and an unresolved receiver records nothing, so the
  // under-approximation invariant holds.
  void HandleMemberAccess(std::size_t i) {
    if (i + 2 >= t.size() || i + 2 > fn.body_end) return;
    if (!t[i + 1].Is(".") && !t[i + 1].Is("->")) return;
    if (!t[i + 2].IsIdent()) return;
    if (i + 3 < t.size() && t[i + 3].Is("(")) return;  // member call
    if (i > 0 && (t[i - 1].Is(".") || t[i - 1].Is("->") ||
                  t[i - 1].Is("::"))) {
      return;  // not the head of the chain
    }
    const std::string type = TypeOf(t[i].text);
    if (type.empty()) return;
    out.member_accesses.push_back({t[i + 2].line, type, t[i + 2].text});
  }

  void HandleCall(std::size_t i) {
    BodyEvent e;
    e.kind = BodyEvent::Kind::kCall;
    e.line = t[i].line;
    e.tok = i;
    e.callee_base = t[i].text;
    e.held_locks = Held();
    e.held_shared = HeldShared();
    // Receiver resolution (conservative: unresolved stays "").
    std::string receiver_type;
    bool have_receiver = false;
    if (i >= 2 && (t[i - 1].Is(".") || t[i - 1].Is("->"))) {
      have_receiver = true;
      const Token& r = t[i - 2];
      if (r.IsIdent()) {
        e.recv_name = r.text;
        receiver_type = r.text == "this" ? fn.cls : TypeOf(r.text);
      } else if (r.Is(")")) {
        // Chained off a static call: `X::F().G(...)` — treat the
        // receiver as X (heuristic for singleton accessors).
        std::size_t depth = 0;
        std::size_t j = i - 2;
        while (j > 0) {
          if (t[j].Is(")")) ++depth;
          if (t[j].Is("(")) {
            if (--depth == 0) break;
          }
          --j;
        }
        if (j >= 3 && t[j - 1].IsIdent() && t[j - 2].Is("::") &&
            t[j - 3].IsIdent()) {
          receiver_type = t[j - 3].text;
        }
      }
    } else if (i >= 2 && t[i - 1].Is("::") && t[i - 2].IsIdent()) {
      have_receiver = true;
      receiver_type = t[i - 2].text;
    }
    e.recv_type = receiver_type;
    if (have_receiver) {
      if (!receiver_type.empty()) {
        const std::string qname = receiver_type + "::" + e.callee_base;
        if (index.by_qname.count(qname) > 0) e.callee_qname = qname;
      }
    } else {
      if (!fn.cls.empty() &&
          index.by_qname.count(fn.cls + "::" + e.callee_base) > 0) {
        e.callee_qname = fn.cls + "::" + e.callee_base;
        e.implicit_this = true;
      } else if (index.by_qname.count(e.callee_base) > 0) {
        e.callee_qname = e.callee_base;
      }
    }
    // Bare statement: the statement consists solely of this call.
    std::size_t chain_first = i;
    while (chain_first >= 2 &&
           (t[chain_first - 1].Is("::") || t[chain_first - 1].Is(".") ||
            t[chain_first - 1].Is("->")) &&
           t[chain_first - 2].IsIdent()) {
      chain_first -= 2;
    }
    const std::size_t close = CloseOf(i + 1);
    e.stmt_bare = chain_first == stmt_start && close + 1 < t.size() &&
                  t[close + 1].Is(";");
    // Does any argument name a real table?
    for (std::size_t a = i + 2; a < close; ++a) {
      if (t[a].IsIdent() && real_tables.count(t[a].text) > 0 &&
          (a == 0 || (!t[a - 1].Is(".") && !t[a - 1].Is("->") &&
                      !t[a - 1].Is("::")))) {
        e.real_table_arg = true;
        break;
      }
    }
    // Top-level argument count, and the extent of the first argument
    // (lambda / nested-call groups are opaque to the comma scan).
    std::size_t depth = 0;
    std::size_t first_arg_end = close;
    bool any_arg_tokens = false;
    for (std::size_t a = i + 2; a < close && a < t.size(); ++a) {
      const std::string& s = t[a].text;
      if (s == "(" || s == "{" || s == "[") {
        ++depth;
        any_arg_tokens = true;
        continue;
      }
      if (s == ")" || s == "}" || s == "]") {
        if (depth > 0) --depth;
        continue;
      }
      if (s == "," && depth == 0) {
        if (e.call_args == 0) first_arg_end = a;
        ++e.call_args;
        continue;
      }
      any_arg_tokens = true;
    }
    if (any_arg_tokens || e.call_args > 0) ++e.call_args;
    // Atomic op: does a memory-order argument name relaxed?
    if (IsAtomicOp(e.callee_base)) {
      for (std::size_t a = i + 2; a < close && a < t.size(); ++a) {
        if (t[a].IsIdent() && t[a].text == "memory_order_relaxed") {
          e.atomic_relaxed = true;
          break;
        }
      }
    }
    // CondVar wait: resolve the mutex passed as the first argument.
    if ((e.callee_base == "Wait" || e.callee_base == "WaitFor") &&
        e.call_args >= 1) {
      e.cv_mutex = ResolveLockExpr(i + 2, first_arg_end);
    }
    out.events.push_back(std::move(e));
  }

  void MarkStatusLocalUse() {
    for (StatusLocal& local : out.status_locals) {
      std::size_t decl_idx = fn.body_end;
      for (std::size_t i = fn.body_begin; i <= fn.body_end && i < t.size();
           ++i) {
        if (t[i].IsIdent() && t[i].text == local.name &&
            t[i].line == local.line && i > fn.body_begin &&
            t[i - 1].IsIdent()) {
          decl_idx = i;
          break;
        }
      }
      for (std::size_t i = decl_idx + 1;
           i <= fn.body_end && i < t.size(); ++i) {
        if (t[i].IsIdent() && t[i].text == local.name) {
          local.used_later = true;
          break;
        }
      }
    }
  }
};

// Builds the statement tree for a body: the control-flow shape the
// path-sensitive rules walk. Constructs the parser does not model
// (switch, labels, inline asm) collapse into opaque kSimple nodes —
// an under-approximation that can only hide findings.
struct StmtParser {
  const std::vector<Token>& t;

  std::size_t Bounded(std::size_t i) const {
    return i >= t.size() ? t.size() : i;
  }

  // Skips past a balanced group opened at i; never loops on a
  // malformed group.
  std::size_t PastGroup(std::size_t i) const {
    const std::size_t close = MatchForward(t, i);
    return close >= t.size() ? t.size() : close + 1;
  }

  // First index >= i past the statement's terminating ";", hopping
  // over nested groups (incl. lambda bodies); stops at an unmatched
  // "}" so a malformed statement cannot escape its scope.
  std::size_t PastSemi(std::size_t i, std::size_t last) const {
    while (i < last && i < t.size()) {
      if (t[i].Is(";")) return i + 1;
      if (t[i].Is("}")) return i;  // scope end: treat as terminator
      if (t[i].Is("(") || t[i].Is("{") || t[i].Is("[")) {
        i = PastGroup(i);
        continue;
      }
      ++i;
    }
    return Bounded(last);
  }

  std::vector<Stmt> ParseList(std::size_t first, std::size_t last) {
    std::vector<Stmt> out;
    std::size_t i = first;
    std::size_t guard = 0;
    while (i < last && i < t.size() && ++guard < 65536) {
      if (t[i].Is(";")) {  // empty statement
        ++i;
        continue;
      }
      if (t[i].Is("}")) break;  // stray close: caller's scope ends here
      std::size_t next = i;
      Stmt s = ParseOne(i, last, next);
      if (next <= i) next = i + 1;  // forward progress, always
      out.push_back(std::move(s));
      i = next;
    }
    return out;
  }

  Stmt ParseOne(std::size_t i, std::size_t last, std::size_t& next) {
    Stmt s;
    s.line = t[i].line;
    s.first = i;
    if (t[i].Is("{")) {
      s.kind = Stmt::Kind::kBlock;
      const std::size_t close = MatchForward(t, i);
      if (close >= t.size() || close > last) {
        next = Bounded(last);
        s.last = next == 0 ? 0 : next - 1;
        return s;
      }
      s.then_stmts = ParseList(i + 1, close);
      s.last = close;
      next = close + 1;
      return s;
    }
    const std::string& head = t[i].IsIdent() ? t[i].text : "";
    if (head == "if") return ParseIf(i, last, next);
    if (head == "while" || head == "for") return ParseLoop(i, last, next);
    if (head == "do") return ParseDoWhile(i, last, next);
    if (head == "return" || head == "break" || head == "continue") {
      s.kind = head == "return" ? Stmt::Kind::kReturn
               : head == "break" ? Stmt::Kind::kBreak
                                 : Stmt::Kind::kContinue;
      next = PastSemi(i + 1, last);
      s.last = next == 0 ? 0 : next - 1;
      return s;
    }
    if (head == "switch") {
      // Opaque: skip the condition group and the body braces.
      std::size_t j = i + 1;
      if (j < t.size() && t[j].Is("(")) j = PastGroup(j);
      if (j < t.size() && t[j].Is("{")) j = PastGroup(j);
      next = Bounded(j > last ? last : j);
      s.last = next == 0 ? 0 : next - 1;
      return s;
    }
    next = PastSemi(i, last);
    s.last = next == 0 ? 0 : next - 1;
    return s;
  }

  // One branch arm: a block's contents, or a single statement wrapped
  // in a list.
  std::vector<Stmt> ParseArm(std::size_t i, std::size_t last,
                             std::size_t& next) {
    if (i < t.size() && t[i].Is("{")) {
      const std::size_t close = MatchForward(t, i);
      if (close < t.size() && close <= last) {
        std::vector<Stmt> arm = ParseList(i + 1, close);
        next = close + 1;
        return arm;
      }
    }
    std::vector<Stmt> arm;
    std::size_t after = i;
    arm.push_back(ParseOne(i, last, after));
    if (after <= i) after = i + 1;
    next = after;
    return arm;
  }

  Stmt ParseIf(std::size_t i, std::size_t last, std::size_t& next) {
    Stmt s;
    s.kind = Stmt::Kind::kIf;
    s.line = t[i].line;
    s.first = i;
    std::size_t j = i + 1;
    if (j < t.size() && t[j].IsIdent() && t[j].text == "constexpr") ++j;
    if (j >= t.size() || !t[j].Is("(")) {  // malformed: opaque
      s.kind = Stmt::Kind::kSimple;
      next = PastSemi(i + 1, last);
      s.last = next == 0 ? 0 : next - 1;
      return s;
    }
    const std::size_t cond_close = MatchForward(t, j);
    if (cond_close >= t.size() || cond_close > last) {
      s.kind = Stmt::Kind::kSimple;
      next = Bounded(last);
      s.last = next == 0 ? 0 : next - 1;
      return s;
    }
    s.head_last = cond_close;
    std::size_t after = cond_close + 1;
    s.then_stmts = ParseArm(cond_close + 1, last, after);
    if (after < last && after < t.size() && t[after].IsIdent() &&
        t[after].text == "else") {
      s.has_else = true;
      std::size_t after_else = after + 1;
      s.else_stmts = ParseArm(after + 1, last, after_else);
      after = after_else;
    }
    s.last = after == 0 ? 0 : after - 1;
    next = after;
    return s;
  }

  Stmt ParseLoop(std::size_t i, std::size_t last, std::size_t& next) {
    Stmt s;
    s.kind = Stmt::Kind::kLoop;
    s.line = t[i].line;
    s.first = i;
    std::size_t j = i + 1;
    if (j >= t.size() || !t[j].Is("(")) {
      s.kind = Stmt::Kind::kSimple;
      next = PastSemi(i + 1, last);
      s.last = next == 0 ? 0 : next - 1;
      return s;
    }
    const std::size_t cond_close = MatchForward(t, j);
    if (cond_close >= t.size() || cond_close > last) {
      s.kind = Stmt::Kind::kSimple;
      next = Bounded(last);
      s.last = next == 0 ? 0 : next - 1;
      return s;
    }
    s.head_last = cond_close;
    std::size_t after = cond_close + 1;
    s.body = ParseArm(cond_close + 1, last, after);
    s.last = after == 0 ? 0 : after - 1;
    next = after;
    return s;
  }

  Stmt ParseDoWhile(std::size_t i, std::size_t last, std::size_t& next) {
    Stmt s;
    s.kind = Stmt::Kind::kLoop;
    s.line = t[i].line;
    s.first = i;
    std::size_t after = i + 1;
    s.body = ParseArm(i + 1, last, after);
    // Trailer: while (...) ;
    std::size_t j = after;
    if (j < t.size() && t[j].IsIdent() && t[j].text == "while" &&
        j + 1 < t.size() && t[j + 1].Is("(")) {
      const std::size_t cond_close = MatchForward(t, j + 1);
      if (cond_close < t.size() && cond_close <= last) {
        s.head_last = cond_close;
        j = cond_close + 1;
        if (j < t.size() && t[j].Is(";")) ++j;
      }
    }
    next = Bounded(j > last ? last : j);
    s.last = next == 0 ? 0 : next - 1;
    return s;
  }
};

}  // namespace

BodySummary AnalyzeBody(const FileModel& model, const FunctionInfo& fn,
                        const ProjectIndex& index) {
  BodyScanner scanner{model, fn, index, model.tokens, {}, {}, {}, {}, 0};
  scanner.out.fn = &fn;
  scanner.Run();
  if (fn.body_end > fn.body_begin && fn.body_end < model.tokens.size()) {
    StmtParser sp{model.tokens};
    scanner.out.stmts = sp.ParseList(fn.body_begin + 1, fn.body_end);
  }
  return scanner.out;
}

}  // namespace aru::arulint
