// arulint CLI. Usage:
//
//   arulint [--root <dir>]... [--sarif <out.sarif>]
//           [--sarif-dir <dir>] [--cache-dir <dir>]
//           [--baseline <file>] [--update-baseline]
//           [--stats] [--list-rules] [<file>]...
//
// Checks every .h/.cc under each --root (minus .arulintignore matches)
// plus any explicitly listed files, all indexed as ONE project so
// cross-file rules (crash-order annotations on header declarations,
// the lock graph, CondVar wait/notify pairing) see the whole picture.
// Prints one line per finding; with --sarif also writes a SARIF 2.1.0
// report, and with --sarif-dir one SARIF file per rule family
// (atomic-order, pin-protocol, condvar-wait, thread-lifecycle,
// record-coverage, field-symmetry, durable-ack, core) for per-category
// upload. --cache-dir enables the incremental engine: per-file models
// are serialized there keyed by content hash, so unchanged files skip
// re-tokenization/re-modeling on the next run. --baseline suppresses
// findings recorded in the given file (--update-baseline rewrites it
// from the current run instead). --stats prints per-rule finding
// counts, engine counters (cache_hits=/cache_misses=/
// baseline_suppressed=) and the analysis wall time to stderr;
// --list-rules prints the rule catalogue and exits. Exits 0 when
// clean, 1 when any finding was reported, 2 on usage errors.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "tools/arulint/arulint.h"

namespace {

constexpr char kUsage[] =
    "usage: arulint [--root <dir>]... [--sarif <out>] [--sarif-dir <dir>]\n"
    "               [--cache-dir <dir>] [--baseline <file>]\n"
    "               [--update-baseline] [--stats] [--list-rules]\n"
    "               [<file>]...\n"
    "\n"
    "  --root <dir>      check every .h/.cc under <dir> (repeatable)\n"
    "  --sarif <out>     write all findings as one SARIF 2.1.0 report\n"
    "  --sarif-dir <dir> write one SARIF report per rule family into\n"
    "                    <dir> (atomic-order, pin-protocol, condvar-wait,\n"
    "                    thread-lifecycle, record-coverage,\n"
    "                    field-symmetry, durable-ack, core)\n"
    "  --cache-dir <dir> reuse serialized per-file models for unchanged\n"
    "                    files (keyed by content hash)\n"
    "  --baseline <file> suppress findings recorded in <file>\n"
    "  --update-baseline rewrite the baseline from this run's findings\n"
    "  --stats           print per-rule finding counts, engine counters\n"
    "                    and analysis time\n"
    "  --list-rules      print the rule catalogue and exit\n";

// The v3/v4 families that get their own SARIF category; every other
// rule lands in "core".
const char* FamilyOf(const std::string& rule) {
  if (rule == "atomic-order" || rule == "pin-protocol" ||
      rule == "condvar-wait" || rule == "thread-lifecycle" ||
      rule == "record-coverage" || rule == "field-symmetry" ||
      rule == "durable-ack") {
    return rule.c_str();
  }
  return "core";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::vector<std::string> files;
  std::string sarif_path;
  std::string sarif_dir;
  aru::arulint::CheckOptions options;
  bool stats = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "arulint: --root needs a directory\n");
        return 2;
      }
      roots.emplace_back(argv[++i]);
    } else if (arg == "--sarif") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "arulint: --sarif needs an output path\n");
        return 2;
      }
      sarif_path = argv[++i];
    } else if (arg == "--sarif-dir") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "arulint: --sarif-dir needs a directory\n");
        return 2;
      }
      sarif_dir = argv[++i];
    } else if (arg == "--cache-dir") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "arulint: --cache-dir needs a directory\n");
        return 2;
      }
      options.cache_dir = argv[++i];
    } else if (arg == "--baseline") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "arulint: --baseline needs a file\n");
        return 2;
      }
      options.baseline_path = argv[++i];
    } else if (arg == "--update-baseline") {
      options.update_baseline = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--list-rules") {
      for (const aru::arulint::RuleInfo& rule : aru::arulint::RuleCatalog()) {
        std::printf("%-18s %s\n", rule.id.c_str(), rule.description.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stderr);
      return 2;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "arulint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (roots.empty() && files.empty()) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  if (options.update_baseline && options.baseline_path.empty()) {
    std::fprintf(stderr, "arulint: --update-baseline needs --baseline\n");
    return 2;
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::string> all_files;
  for (const std::string& root : roots) {
    auto collected = aru::arulint::CollectFiles(root);
    all_files.insert(all_files.end(), collected.begin(), collected.end());
  }
  all_files.insert(all_files.end(), files.begin(), files.end());
  aru::arulint::EngineStats engine_stats;
  const std::vector<aru::arulint::Finding> findings =
      aru::arulint::CheckFiles(all_files, options, &engine_stats);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  for (const auto& finding : findings) {
    std::printf("%s\n", aru::arulint::FormatFinding(finding).c_str());
  }
  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "arulint: cannot write SARIF to '%s'\n",
                   sarif_path.c_str());
      return 2;
    }
    out << aru::arulint::SarifReport(findings);
  }
  if (!sarif_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(sarif_dir, ec);
    std::map<std::string, std::vector<aru::arulint::Finding>> by_family;
    // Every family gets a file even when empty, so CI uploads are
    // stable across runs.
    for (const char* family :
         {"atomic-order", "pin-protocol", "condvar-wait",
          "thread-lifecycle", "record-coverage", "field-symmetry",
          "durable-ack", "core"}) {
      by_family[family];
    }
    for (const aru::arulint::Finding& f : findings) {
      by_family[FamilyOf(f.rule)].push_back(f);
    }
    for (const auto& [family, family_findings] : by_family) {
      const std::string path = sarif_dir + "/" + family + ".sarif";
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "arulint: cannot write SARIF to '%s'\n",
                     path.c_str());
        return 2;
      }
      out << aru::arulint::SarifReport(family_findings);
    }
  }
  if (stats) {
    std::map<std::string, std::size_t> counts;
    for (const aru::arulint::Finding& f : findings) ++counts[f.rule];
    std::fprintf(stderr, "arulint: %zu file(s), %zu finding(s), %lld ms\n",
                 all_files.size(), findings.size(),
                 static_cast<long long>(elapsed.count()));
    std::fprintf(stderr,
                 "arulint: engine: cache_hits=%zu cache_misses=%zu "
                 "baseline_suppressed=%zu\n",
                 engine_stats.cache_hits, engine_stats.cache_misses,
                 engine_stats.baseline_suppressed);
    for (const aru::arulint::RuleInfo& rule : aru::arulint::RuleCatalog()) {
      const auto it = counts.find(rule.id);
      std::fprintf(stderr, "arulint:   %-18s %zu\n", rule.id.c_str(),
                   it == counts.end() ? std::size_t{0} : it->second);
      counts.erase(rule.id);
    }
    for (const auto& [rule, count] : counts) {  // catalogue drift guard
      std::fprintf(stderr, "arulint:   %-18s %zu\n", rule.c_str(), count);
    }
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "arulint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
