// arulint CLI. Usage:
//
//   arulint [--root <dir>]... [--sarif <out.sarif>] [<file>]...
//
// Checks every .h/.cc under each --root (minus .arulintignore matches)
// plus any explicitly listed files, all indexed as ONE project so
// cross-file rules (crash-order annotations on header declarations,
// the lock graph) see the whole picture. Prints one line per finding;
// with --sarif also writes a SARIF 2.1.0 report. Exits 0 when clean,
// 1 when any finding was reported, 2 on usage errors.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "tools/arulint/arulint.h"

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::vector<std::string> files;
  std::string sarif_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "arulint: --root needs a directory\n");
        return 2;
      }
      roots.emplace_back(argv[++i]);
    } else if (arg == "--sarif") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "arulint: --sarif needs an output path\n");
        return 2;
      }
      sarif_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: arulint [--root <dir>]... [--sarif <out>] "
                   "[<file>]...\n");
      return 2;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "arulint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (roots.empty() && files.empty()) {
    std::fprintf(stderr,
                 "usage: arulint [--root <dir>]... [--sarif <out>] "
                 "[<file>]...\n");
    return 2;
  }

  std::vector<std::string> all_files;
  for (const std::string& root : roots) {
    auto collected = aru::arulint::CollectFiles(root);
    all_files.insert(all_files.end(), collected.begin(), collected.end());
  }
  all_files.insert(all_files.end(), files.begin(), files.end());
  const std::vector<aru::arulint::Finding> findings =
      aru::arulint::CheckFiles(all_files);

  for (const auto& finding : findings) {
    std::printf("%s\n", aru::arulint::FormatFinding(finding).c_str());
  }
  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "arulint: cannot write SARIF to '%s'\n",
                   sarif_path.c_str());
      return 2;
    }
    out << aru::arulint::SarifReport(findings);
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "arulint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
