// arulint CLI. Usage:
//
//   arulint [--root <dir>]... [<file>]...
//
// Checks every .h/.cc under each --root plus any explicitly listed
// files. Prints one line per finding; exits 0 when clean, 1 when any
// finding was reported, 2 on usage errors.
#include <cstdio>
#include <string>
#include <vector>

#include "tools/arulint/arulint.h"

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "arulint: --root needs a directory\n");
        return 2;
      }
      roots.emplace_back(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr, "usage: arulint [--root <dir>]... [<file>]...\n");
      return 2;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "arulint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (roots.empty() && files.empty()) {
    std::fprintf(stderr, "usage: arulint [--root <dir>]... [<file>]...\n");
    return 2;
  }

  std::vector<aru::arulint::Finding> findings;
  for (const std::string& root : roots) {
    auto f = aru::arulint::CheckTree(root);
    findings.insert(findings.end(), f.begin(), f.end());
  }
  for (const std::string& file : files) {
    auto f = aru::arulint::CheckFile(file);
    findings.insert(findings.end(), f.begin(), f.end());
  }

  for (const auto& finding : findings) {
    std::printf("%s\n", aru::arulint::FormatFinding(finding).c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "arulint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
