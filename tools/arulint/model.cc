#include "tools/arulint/model.h"

#include <algorithm>
#include <array>
#include <charconv>
#include <cstdint>
#include <cstdlib>

#include "tools/arulint/arulint.h"

namespace aru::arulint {
namespace {

bool IsKeyword(const std::string& s) {
  static const std::array<std::string_view, 24> kWords = {
      "if",       "else",     "for",      "while",    "do",       "switch",
      "case",     "return",   "sizeof",   "alignof",  "decltype", "new",
      "delete",   "throw",    "catch",    "goto",     "operator", "co_await",
      "co_yield", "co_return", "static_assert", "requires", "this", "default",
  };
  return std::find(kWords.begin(), kWords.end(), s) != kWords.end();
}

bool IsAruMacro(const std::string& s) {
  return s.rfind("ARU_", 0) == 0;
}

// Skips a balanced group opened at `i` ("(", "{", "[", "<"); returns
// the index just past the closer (or tokens.size() when unbalanced).
std::size_t SkipGroup(const std::vector<Token>& t, std::size_t i) {
  const std::size_t close = MatchForward(t, i);
  return close >= t.size() ? t.size() : close + 1;
}

// Reverse template-argument match: `close` indexes a ">" or ">>"
// token; returns the index of the matching "<", or npos.
std::size_t MatchAngleBackward(const std::vector<Token>& t,
                               std::size_t close) {
  std::size_t depth = 0;
  std::size_t i = close + 1;
  while (i > 0) {
    --i;
    const std::string& s = t[i].text;
    if (s == ">") {
      ++depth;
    } else if (s == ">>") {
      depth += 2;
    } else if (s == "<") {
      if (depth <= 1) return i;
      --depth;
    } else if (s == ";" || s == "{" || s == "}") {
      return std::string::npos;
    }
  }
  return std::string::npos;
}

// The last identifier in [first, last), or "".
std::string LastIdent(const std::vector<Token>& t, std::size_t first,
                      std::size_t last) {
  std::string out;
  for (std::size_t i = first; i < last && i < t.size(); ++i) {
    if (t[i].IsIdent() && t[i].text != "const" && t[i].text != "mutable" &&
        t[i].text != "volatile" && t[i].text != "struct" &&
        t[i].text != "typename") {
      out = t[i].text;
    }
  }
  return out;
}

struct Parser {
  FileModel& m;
  const std::vector<Token>& t;

  struct Ctx {
    enum class Kind { kNamespace, kClass, kOther };
    Kind kind = Kind::kOther;
    std::string name;
    std::size_t struct_index = std::string::npos;  // into m.structs
  };
  std::vector<Ctx> stack;

  std::string EnclosingClass() const {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->kind == Ctx::Kind::kClass) return it->name;
    }
    return "";
  }

  StructInfo* EnclosingStruct() {
    if (stack.empty()) return nullptr;
    const Ctx& top = stack.back();
    if (top.kind != Ctx::Kind::kClass ||
        top.struct_index == std::string::npos) {
      return nullptr;
    }
    return &m.structs[top.struct_index];
  }

  void Run() {
    std::size_t i = 0;
    const std::size_t n = t.size();
    while (i < n) {
      const Token& tok = t[i];
      if (tok.Is("}")) {
        if (!stack.empty()) stack.pop_back();
        ++i;
        continue;
      }
      if (tok.Is("{")) {
        stack.push_back({Ctx::Kind::kOther, "", std::string::npos});
        ++i;
        continue;
      }
      if (!tok.IsIdent()) {
        ++i;
        continue;
      }
      const std::string& s = tok.text;
      if (s == "namespace") {
        i = ParseNamespace(i);
      } else if (s == "template") {
        i = (i + 1 < n && t[i + 1].Is("<")) ? SkipGroup(t, i + 1) : i + 1;
      } else if (s == "using") {
        i = ParseUsing(i);
      } else if (s == "enum") {
        i = ParseEnum(i);
      } else if (s == "class" || s == "struct") {
        i = ParseClass(i);
      } else if ((s == "public" || s == "private" || s == "protected") &&
                 i + 1 < n && t[i + 1].Is(":")) {
        i += 2;
      } else if (s == "typedef" || s == "friend" || s == "static_assert" ||
                 s == "extern") {
        i = SkipToSemi(i);
      } else {
        i = ParseDeclaration(i);
      }
    }
  }

  std::size_t SkipToSemi(std::size_t i) {
    const std::size_t n = t.size();
    while (i < n) {
      if (t[i].Is(";")) return i + 1;
      if (t[i].Is("(") || t[i].Is("{") || t[i].Is("[")) {
        i = SkipGroup(t, i);
        continue;
      }
      ++i;
    }
    return n;
  }

  std::size_t ParseNamespace(std::size_t i) {
    const std::size_t n = t.size();
    std::size_t j = i + 1;
    while (j < n && (t[j].IsIdent() || t[j].Is("::"))) ++j;
    if (j < n && t[j].Is("{")) {
      stack.push_back({Ctx::Kind::kNamespace, "", std::string::npos});
      return j + 1;
    }
    return SkipToSemi(i);  // namespace alias
  }

  std::size_t ParseUsing(std::size_t i) {
    const std::size_t n = t.size();
    // using NAME = <tokens> ;  (using-declarations are skipped)
    if (i + 2 < n && t[i + 1].IsIdent() && t[i + 2].Is("=")) {
      const std::string name = t[i + 1].text;
      const std::size_t semi = SkipToSemi(i + 2);
      // Head: the identifier before the first "<" when the RHS is a
      // template, else the last identifier.
      std::string head;
      for (std::size_t k = i + 3; k + 1 < semi; ++k) {
        if (t[k].Is("<")) break;
        if (t[k].IsIdent()) head = t[k].text;
      }
      if (!head.empty()) m.aliases[name] = head;
      return semi;
    }
    return SkipToSemi(i);
  }

  std::size_t ParseEnum(std::size_t i) {
    const std::size_t n = t.size();
    std::size_t j = i + 1;
    if (j < n && (t[j].Is("class") || t[j].Is("struct"))) ++j;
    std::string name;
    std::size_t name_line = t[i].line;
    if (j < n && t[j].IsIdent()) {
      name = t[j].text;
      name_line = t[j].line;
      ++j;
    }
    std::string underlying;
    if (j < n && t[j].Is(":")) {
      ++j;
      while (j < n && !t[j].Is("{") && !t[j].Is(";")) {
        if (t[j].IsIdent()) underlying = t[j].text;
        ++j;
      }
    }
    if (!name.empty()) m.enums[name] = underlying;
    if (j < n && t[j].Is("{")) {
      if (name.empty()) {
        j = SkipGroup(t, j);
      } else {
        // Walk the body capturing depth-1 enumerator names: the first
        // identifier after "{" or after a top-level ",". Initializer
        // expressions (`= expr`) are skipped to the next comma.
        EnumDef def;
        def.line = name_line;
        def.name = name;
        def.underlying = underlying;
        const std::size_t close = MatchForward(t, j);
        std::size_t k = j + 1;
        bool want_name = true;
        while (k < n && k < close) {
          if (t[k].Is("(") || t[k].Is("{") || t[k].Is("[") || t[k].Is("<")) {
            k = SkipGroup(t, k);
            continue;
          }
          if (t[k].Is(",")) {
            want_name = true;
            ++k;
            continue;
          }
          if (want_name && t[k].IsIdent() && !IsAruMacro(t[k].text)) {
            def.enumerators.push_back({t[k].line, t[k].text});
            want_name = false;
          }
          ++k;
        }
        m.enum_defs.push_back(std::move(def));
        j = close >= n ? n : close + 1;
      }
    }
    if (j < n && t[j].Is(";")) ++j;
    return j;
  }

  std::size_t ParseClass(std::size_t i) {
    const std::size_t n = t.size();
    const bool is_struct = t[i].Is("struct");
    const std::size_t kw_line = t[i].line;
    std::size_t j = i + 1;
    // Skip capability macros: `class ARU_CAPABILITY("mutex") Mutex`.
    while (j < n && t[j].IsIdent() && IsAruMacro(t[j].text)) {
      ++j;
      if (j < n && t[j].Is("(")) j = SkipGroup(t, j);
    }
    std::string name;
    if (j < n && t[j].IsIdent() && !IsKeyword(t[j].text)) name = t[j++].text;
    // Scan for the body or a forward-declaration semicolon, hopping
    // over template arguments and base-clause groups.
    while (j < n && !t[j].Is("{") && !t[j].Is(";")) {
      if (t[j].Is("<")) {
        const std::size_t close = MatchForward(t, j);
        j = close >= n ? j + 1 : close + 1;
        continue;
      }
      if (t[j].Is("(")) {
        j = SkipGroup(t, j);
        continue;
      }
      ++j;
    }
    if (j >= n || t[j].Is(";")) return j >= n ? n : j + 1;
    std::size_t struct_index = std::string::npos;
    if (is_struct && !name.empty()) {
      StructInfo info;
      info.line = kw_line;
      info.name = name;
      info.namespace_scope = EnclosingClass().empty();
      struct_index = m.structs.size();
      m.structs.push_back(std::move(info));
    }
    stack.push_back({Ctx::Kind::kClass, name, struct_index});
    return j + 1;
  }

  // A declaration at namespace/class scope: scans to its end, and en
  // route either hands off to ParseFunction (name followed by a
  // parameter list) or records a data member / struct field.
  std::size_t ParseDeclaration(std::size_t start) {
    const std::size_t n = t.size();
    std::size_t j = start;
    bool saw_paren_group = false;
    while (j < n) {
      const Token& tok = t[j];
      if (tok.Is(";")) {
        RecordMember(start, j);
        return j + 1;
      }
      if (tok.Is("=")) {
        // Everything to the ";" is an initializer (or = default /
        // = delete on an operator we are skipping).
        const std::size_t semi = SkipToSemi(j);
        RecordMember(start, j);
        return semi;
      }
      if (tok.Is("(")) {
        if (j > start && t[j - 1].IsIdent()) {
          const std::string& name = t[j - 1].text;
          if (IsAruMacro(name)) {
            // Annotation argument group (e.g. ARU_ATOMIC_PUBLISHES(x)).
            // Deliberately does NOT count as a parameter list, so a
            // following brace initializer is still a member, not an
            // un-modeled function body.
            j = SkipGroup(t, j);
            continue;
          }
          if (name == "noexcept" || name == "alignas" ||
              name == "decltype" || IsKeyword(name)) {
            j = SkipGroup(t, j);
            saw_paren_group = true;
            continue;
          }
          return ParseFunction(start, j - 1, j);
        }
        j = SkipGroup(t, j);
        saw_paren_group = true;
        continue;
      }
      if (tok.Is("{")) {
        if (saw_paren_group) return SkipGroup(t, j);  // un-modeled body
        j = SkipGroup(t, j);  // brace initializer
        continue;
      }
      if (tok.Is("[")) {
        j = SkipGroup(t, j);
        continue;
      }
      if (tok.Is("<") && j > start && t[j - 1].IsIdent()) {
        const std::size_t close = MatchForward(t, j);
        if (close < n) {
          j = close + 1;
          continue;
        }
      }
      if (tok.Is("}")) return j;  // stray — let the main loop handle it
      ++j;
    }
    return n;
  }

  // Records a data member (class scope) / struct field from the
  // declaration tokens [start, end) where t[end] is ";" or "=".
  // Records a std::atomic declaration (class member or namespace-scope
  // global) with its ARU_ATOMIC_* annotation, for the atomic-order
  // rule. Function-local statics are captured by the body scanner.
  void RecordAtomic(std::size_t start, std::size_t end,
                    const std::string& cls) {
    // First template group of the declared type; `atomic` anywhere
    // inside it marks the declaration (covers both std::atomic<T> x
    // and std::array<std::atomic<T>, N> x).
    std::size_t lt = std::string::npos;
    for (std::size_t i = start + 1; i < end && i < t.size(); ++i) {
      if (t[i].Is("<") && t[i - 1].IsIdent()) {
        lt = i;
        break;
      }
    }
    if (lt == std::string::npos) return;
    const std::size_t close = MatchForward(t, lt);
    if (close >= t.size() || close >= end) return;
    bool is_atomic = false;
    for (std::size_t i = start; i <= close; ++i) {
      if (t[i].IsIdent() && t[i].text == "atomic") is_atomic = true;
    }
    if (!is_atomic) return;
    AtomicDecl decl;
    decl.cls = cls;
    for (std::size_t i = close + 1; i < end && i < t.size(); ++i) {
      if (!t[i].IsIdent()) {
        if (t[i].Is("{") || t[i].Is("=")) break;  // initializer starts
        continue;
      }
      const std::string& s = t[i].text;
      if (IsAruMacro(s)) {
        if (s == "ARU_ATOMIC_COUNTER") decl.ann = AtomicAnn::kCounter;
        if (s == "ARU_ATOMIC_PUBLISHES") decl.ann = AtomicAnn::kPublishes;
        if (i + 1 < end && t[i + 1].Is("(")) i = SkipGroup(t, i + 1) - 1;
        continue;
      }
      if (decl.name.empty() && !IsKeyword(s) && s != "const" &&
          s != "mutable" && s != "static" && s != "inline" &&
          s != "constexpr") {
        decl.name = s;
        decl.line = t[i].line;
      }
    }
    if (!decl.name.empty()) m.atomics.push_back(std::move(decl));
  }

  void RecordMember(std::size_t start, std::size_t end) {
    const std::string cls = EnclosingClass();
    // Atomic capture runs before the class-scope check so that
    // namespace-scope atomics (cls "") are still recorded.
    RecordAtomic(start, end, cls);
    if (cls.empty()) return;
    // Re-tokenize the declaration without annotation groups.
    std::vector<Token> decl;
    for (std::size_t i = start; i < end && i < t.size(); ++i) {
      if (t[i].IsIdent() && IsAruMacro(t[i].text)) {
        if (i + 1 < end && t[i + 1].Is("(")) {
          const std::size_t close = MatchForward(t, i + 1);
          i = close >= t.size() ? end : close;
        }
        continue;
      }
      decl.push_back(t[i]);
    }
    if (decl.empty()) return;
    for (const Token& d : decl) {
      if (d.Is("static") || d.Is("using") || d.Is("friend") ||
          d.Is("typedef") || d.Is("operator")) {
        return;
      }
    }
    // Field name: the last identifier before the first array bracket,
    // else the last identifier overall.
    std::size_t name_idx = std::string::npos;
    std::size_t bracket = std::string::npos;
    for (std::size_t i = 0; i < decl.size(); ++i) {
      if (decl[i].Is("[")) {
        bracket = i;
        break;
      }
      if (decl[i].IsIdent() && !IsKeyword(decl[i].text)) name_idx = i;
    }
    if (name_idx == std::string::npos) return;
    FieldInfo field;
    field.name = decl[name_idx].text;
    field.line = decl[name_idx].line;
    for (std::size_t i = 0; i < name_idx; ++i) {
      if (decl[i].Is("*")) field.is_pointer = true;
      if (decl[i].Is("&") || decl[i].Is("&&")) field.is_reference = true;
      if (decl[i].IsIdent() && decl[i].text != "const" &&
          decl[i].text != "mutable" && decl[i].text != "volatile" &&
          decl[i].text != "constexpr" && decl[i].text != "inline") {
        field.type_head = decl[i].text;
      }
    }
    if (field.type_head.empty() || field.type_head == field.name) return;
    if (bracket != std::string::npos && bracket + 1 < decl.size() &&
        decl[bracket + 1].kind == Token::Kind::kNumber) {
      field.array_len = static_cast<std::size_t>(
          std::strtoull(decl[bracket + 1].text.c_str(), nullptr, 0));
      if (field.array_len == 0) field.array_len = 1;
    }
    m.members[cls][field.name] = field.type_head;
    if (field.type_head == "thread") {
      m.thread_members.push_back({0, field.line, cls, field.name});
    }
    if (StructInfo* s = EnclosingStruct()) s->fields.push_back(field);
  }

  std::size_t ParseFunction(std::size_t decl_start, std::size_t name_idx,
                            std::size_t paren) {
    const std::size_t n = t.size();
    FunctionInfo fn;
    fn.base = t[name_idx].text;
    fn.line = t[name_idx].line;
    bool is_dtor = name_idx > 0 && t[name_idx - 1].Is("~");
    std::size_t chain_start = name_idx;
    if (is_dtor) chain_start = name_idx - 1;
    if (chain_start >= 2 && t[chain_start - 1].Is("::") &&
        t[chain_start - 2].IsIdent()) {
      fn.cls = t[chain_start - 2].text;
      chain_start -= 2;
      while (chain_start >= 2 && t[chain_start - 1].Is("::") &&
             t[chain_start - 2].IsIdent()) {
        chain_start -= 2;  // deeper qualifiers are namespaces
      }
    }
    if (fn.cls.empty()) fn.cls = EnclosingClass();
    fn.is_dtor = is_dtor;
    fn.is_ctor = !is_dtor && !fn.cls.empty() && fn.base == fn.cls;
    // Return type: walk back from the name chain.
    if (!fn.is_ctor && !fn.is_dtor && chain_start > decl_start) {
      std::size_t r = chain_start - 1;
      while (r > decl_start &&
             (t[r].Is("&") || t[r].Is("&&") || t[r].Is("*") ||
              t[r].Is("const"))) {
        --r;
      }
      if (t[r].IsIdent()) {
        if (t[r].text == "Status") fn.returns_status = true;
      } else if (t[r].Is(">") || t[r].Is(">>")) {
        const std::size_t open = MatchAngleBackward(t, r);
        if (open != std::string::npos && open > decl_start &&
            t[open - 1].IsIdent()) {
          const std::string& head = t[open - 1].text;
          if (head == "Result" || head == "StatusOr") {
            fn.returns_status = true;
          }
        }
      }
    }
    // Parameters.
    const std::size_t close = MatchForward(t, paren);
    if (close >= n) return n;
    ParseParams(paren + 1, close, fn);
    // Trailer: qualifiers, annotations, trailing return, ctor-init.
    std::size_t pos = close + 1;
    std::size_t guard = 0;
    while (pos < n && ++guard < 4096) {
      const Token& tok = t[pos];
      if (tok.Is(";")) {
        ++pos;
        break;
      }
      if (tok.Is("{")) {
        fn.has_body = true;
        fn.body_begin = pos;
        fn.body_end = MatchForward(t, pos);
        if (fn.body_end >= n) fn.body_end = n - 1;
        pos = fn.body_end + 1;
        break;
      }
      if (tok.Is("=")) {  // = default / = delete / = 0
        pos = SkipToSemi(pos);
        break;
      }
      if (tok.Is(":")) {  // ctor initializer list
        ++pos;
        while (pos < n) {
          if (t[pos].Is("(")) {
            pos = SkipGroup(t, pos);
            continue;
          }
          if (t[pos].Is("{")) {
            if (pos > 0 && t[pos - 1].IsIdent()) {
              pos = SkipGroup(t, pos);  // member brace-init
              continue;
            }
            break;  // the body
          }
          if (t[pos].Is(";")) break;
          ++pos;
        }
        continue;
      }
      if (tok.Is("->")) {  // trailing return type
        ++pos;
        while (pos < n && !t[pos].Is("{") && !t[pos].Is(";") &&
               !t[pos].Is("=")) {
          if (t[pos].IsIdent() &&
              (t[pos].text == "Status" || t[pos].text == "Result" ||
               t[pos].text == "StatusOr")) {
            fn.returns_status = true;
          }
          ++pos;
        }
        continue;
      }
      if (tok.IsIdent() && IsAruMacro(tok.text)) {
        if (tok.text == "ARU_MUTATES_TABLES") fn.mutates_tables = true;
        if (tok.text == "ARU_APPENDS_SUMMARY") fn.appends_summary = true;
        if (tok.text == "ARU_ENCODES_RECORD") fn.encodes_record = true;
        if (tok.text == "ARU_DECODES_RECORD") fn.decodes_record = true;
        ++pos;
        if (pos < n && t[pos].Is("(")) pos = SkipGroup(t, pos);
        continue;
      }
      ++pos;  // const, noexcept, override, final, &, &&, ...
    }
    if (!fn.base.empty() && !IsKeyword(fn.base) &&
        (!is_dtor || !fn.cls.empty())) {
      fn.qname = is_dtor ? fn.cls + "::~" + fn.base
                         : (fn.cls.empty() ? fn.base
                                           : fn.cls + "::" + fn.base);
      m.functions.push_back(std::move(fn));
    }
    return pos;
  }

  void ParseParams(std::size_t first, std::size_t last, FunctionInfo& fn) {
    std::size_t chunk_start = first;
    std::size_t depth = 0;
    for (std::size_t i = first; i <= last && i < t.size(); ++i) {
      const bool at_end = i == last;
      const std::string& s = t[i].text;
      if (!at_end) {
        if (s == "(" || s == "{" || s == "[") {
          ++depth;
          continue;
        }
        if (s == ")" || s == "}" || s == "]") {
          if (depth > 0) --depth;
          continue;
        }
        if (s == "<" && i > first && t[i - 1].IsIdent()) {
          const std::size_t close = MatchForward(t, i);
          if (close < last) {
            i = close;
            continue;
          }
        }
      }
      if (at_end || (s == "," && depth == 0)) {
        if (i > chunk_start) AddParam(chunk_start, i, fn);
        chunk_start = i + 1;
      }
    }
  }

  void AddParam(std::size_t first, std::size_t last, FunctionInfo& fn) {
    // Cut default arguments.
    std::size_t end = last;
    for (std::size_t i = first; i < last; ++i) {
      if (t[i].Is("=")) {
        end = i;
        break;
      }
    }
    Param p;
    std::size_t last_ident = std::string::npos;
    std::size_t ident_count = 0;
    for (std::size_t i = first; i < end; ++i) {
      const Token& tok = t[i];
      if (tok.Is("&") || tok.Is("&&")) p.is_ref = true;
      if (tok.Is("const")) p.is_const = true;
      if (tok.IsIdent() && tok.text != "const" && tok.text != "struct" &&
          tok.text != "typename" && tok.text != "volatile") {
        last_ident = i;
        ++ident_count;
      }
    }
    if (last_ident == std::string::npos) return;
    if (ident_count >= 2) {
      p.name = t[last_ident].text;
      p.type_head = LastIdent(t, first, last_ident);
    } else {
      p.type_head = t[last_ident].text;  // unnamed parameter
    }
    fn.params.push_back(std::move(p));
  }
};

std::vector<std::string> SplitLines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

}  // namespace

FileModel BuildFileModel(const std::string& path, std::string_view content) {
  FileModel m;
  m.path = path;
  const std::string stripped = StripCommentsAndStrings(content);
  m.raw = SplitLines(content);
  m.code = SplitLines(stripped);
  m.tokens = Lex(stripped);
  Parser parser{m, m.tokens, {}};
  parser.Run();
  return m;
}

bool ProjectIndex::ReturnsStatus(const std::string& qname) const {
  const auto it = by_qname.find(qname);
  if (it == by_qname.end()) return false;
  for (const FunctionInfo* fn : it->second) {
    if (fn->returns_status) return true;
  }
  return false;
}

std::string ProjectIndex::MemberType(const std::string& cls,
                                     const std::string& member) const {
  const auto cit = members.find(cls);
  if (cit == members.end()) return "";
  const auto mit = cit->second.find(member);
  return mit == cit->second.end() ? "" : mit->second;
}

ProjectIndex BuildIndex(const std::vector<FileModel>& models) {
  ProjectIndex index;
  index.models = &models;
  for (std::size_t f = 0; f < models.size(); ++f) {
    const FileModel& m = models[f];
    for (const FunctionInfo& fn : m.functions) {
      index.by_qname[fn.qname].push_back(&fn);
      if (!fn.is_ctor && !fn.is_dtor) {
        auto& counts = index.base_status[fn.base];
        (fn.returns_status ? counts.first : counts.second) += 1;
      }
      if (fn.mutates_tables) index.annotated_mutators.insert(fn.qname);
      if (fn.appends_summary) index.annotated_appenders.insert(fn.qname);
      if (fn.encodes_record) index.annotated_encoders.insert(fn.qname);
      if (fn.decodes_record) index.annotated_decoders.insert(fn.qname);
    }
    for (EnumDef def : m.enum_defs) {
      def.file = f;
      index.enum_defs.push_back(std::move(def));
    }
    for (AtomicDecl a : m.atomics) {
      a.file = f;
      index.atomics.push_back(std::move(a));
    }
    for (ThreadMember tm : m.thread_members) {
      tm.file = f;
      index.thread_members[tm.cls].push_back(std::move(tm));
    }
    for (const auto& [cls, members] : m.members) {
      for (const auto& [name, head] : members) {
        index.members[cls].emplace(name, head);
      }
    }
    for (const auto& [name, head] : m.aliases) {
      index.aliases.emplace(name, head);
    }
    for (const auto& [name, head] : m.enums) {
      index.enums.emplace(name, head);
    }
  }
  return index;
}

// --- Model cache serialization ------------------------------------------
//
// Line-oriented text. Every string field is written with a leading '='
// (so the empty string round-trips), and no serialized string ever
// contains whitespace: identifiers, qualified names and token texts are
// all whitespace-free by construction. Numbers are decimal. The reader
// rejects anything malformed — a failed load is a cache miss, never a
// wrong model.

namespace {

void AppendNum(std::string& out, std::uint64_t v) {
  out += ' ';
  out += std::to_string(v);
}

void AppendStr(std::string& out, const std::string& s) {
  out += " =";
  out += s;
}

void AppendFlags(std::string& out, std::initializer_list<bool> flags) {
  out += ' ';
  for (const bool f : flags) out += f ? '1' : '0';
}

// Splits one line into space-separated fields.
std::vector<std::string_view> SplitFields(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (start < line.size()) {
    const std::size_t sp = line.find(' ', start);
    if (sp == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    if (sp > start) fields.push_back(line.substr(start, sp - start));
    start = sp + 1;
  }
  return fields;
}

bool ParseNum(std::string_view field, std::uint64_t& out) {
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), out);
  return ec == std::errc() && ptr == field.data() + field.size();
}

bool ParseStr(std::string_view field, std::string& out) {
  if (field.empty() || field[0] != '=') return false;
  out.assign(field.substr(1));
  return true;
}

bool ParseFlags(std::string_view field, std::initializer_list<bool*> flags) {
  if (field.size() != flags.size()) return false;
  std::size_t i = 0;
  for (bool* f : flags) {
    if (field[i] != '0' && field[i] != '1') return false;
    *f = field[i] == '1';
    ++i;
  }
  return true;
}

// Sequential line cursor over the serialized text.
struct LineCursor {
  std::string_view text;
  std::size_t pos = 0;

  bool Next(std::vector<std::string_view>& fields) {
    if (pos > text.size()) return false;
    const std::size_t nl = text.find('\n', pos);
    std::string_view line;
    if (nl == std::string_view::npos) {
      line = text.substr(pos);
      pos = text.size() + 1;
    } else {
      line = text.substr(pos, nl - pos);
      pos = nl + 1;
    }
    fields = SplitFields(line);
    return true;
  }

  // Reads a section header "<tag> <count>".
  bool Section(std::string_view tag, std::uint64_t& count) {
    std::vector<std::string_view> f;
    return Next(f) && f.size() == 2 && f[0] == tag && ParseNum(f[1], count);
  }
};

}  // namespace

std::uint64_t ContentHash(std::string_view content) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::string_view s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;  // FNV-1a prime
    }
  };
  mix(kModelCacheVersion);
  mix("\n");
  mix(content);
  return h;
}

std::string SerializeFileModel(const FileModel& m) {
  std::string out;
  out += kModelCacheVersion;
  out += '\n';
  out += "tok";
  AppendNum(out, m.tokens.size());
  out += '\n';
  for (const Token& tok : m.tokens) {
    out += std::to_string(static_cast<int>(tok.kind));
    AppendNum(out, tok.line);
    AppendStr(out, tok.text);
    out += '\n';
  }
  out += "fn";
  AppendNum(out, m.functions.size());
  out += '\n';
  for (const FunctionInfo& fn : m.functions) {
    out += std::to_string(fn.line);
    AppendFlags(out, {fn.returns_status, fn.is_ctor, fn.is_dtor,
                      fn.mutates_tables, fn.appends_summary,
                      fn.encodes_record, fn.decodes_record, fn.has_body});
    AppendNum(out, fn.body_begin);
    AppendNum(out, fn.body_end);
    AppendNum(out, fn.params.size());
    AppendStr(out, fn.cls);
    AppendStr(out, fn.base);
    AppendStr(out, fn.qname);
    out += '\n';
    for (const Param& p : fn.params) {
      out += 'p';
      AppendFlags(out, {p.is_ref, p.is_const});
      AppendStr(out, p.name);
      AppendStr(out, p.type_head);
      out += '\n';
    }
  }
  out += "st";
  AppendNum(out, m.structs.size());
  out += '\n';
  for (const StructInfo& s : m.structs) {
    out += std::to_string(s.line);
    AppendFlags(out, {s.namespace_scope, s.fields_parsed});
    AppendNum(out, s.fields.size());
    AppendStr(out, s.name);
    out += '\n';
    for (const FieldInfo& f : s.fields) {
      out += 'f';
      AppendNum(out, f.line);
      AppendFlags(out, {f.is_pointer, f.is_reference});
      AppendNum(out, f.array_len);
      AppendStr(out, f.name);
      AppendStr(out, f.type_head);
      out += '\n';
    }
  }
  std::size_t member_count = 0;
  for (const auto& [cls, members] : m.members) member_count += members.size();
  out += "mem";
  AppendNum(out, member_count);
  out += '\n';
  for (const auto& [cls, members] : m.members) {
    for (const auto& [name, head] : members) {
      out += 'm';
      AppendStr(out, cls);
      AppendStr(out, name);
      AppendStr(out, head);
      out += '\n';
    }
  }
  out += "ali";
  AppendNum(out, m.aliases.size());
  out += '\n';
  for (const auto& [name, head] : m.aliases) {
    out += 'a';
    AppendStr(out, name);
    AppendStr(out, head);
    out += '\n';
  }
  out += "enu";
  AppendNum(out, m.enums.size());
  out += '\n';
  for (const auto& [name, head] : m.enums) {
    out += 'u';
    AppendStr(out, name);
    AppendStr(out, head);
    out += '\n';
  }
  out += "ed";
  AppendNum(out, m.enum_defs.size());
  out += '\n';
  for (const EnumDef& def : m.enum_defs) {
    out += std::to_string(def.line);
    AppendNum(out, def.enumerators.size());
    AppendStr(out, def.name);
    AppendStr(out, def.underlying);
    out += '\n';
    for (const Enumerator& e : def.enumerators) {
      out += 'e';
      AppendNum(out, e.line);
      AppendStr(out, e.name);
      out += '\n';
    }
  }
  out += "at";
  AppendNum(out, m.atomics.size());
  out += '\n';
  for (const AtomicDecl& a : m.atomics) {
    out += std::to_string(a.line);
    AppendNum(out, static_cast<std::uint64_t>(a.ann));
    AppendStr(out, a.cls);
    AppendStr(out, a.name);
    out += '\n';
  }
  out += "th";
  AppendNum(out, m.thread_members.size());
  out += '\n';
  for (const ThreadMember& tm : m.thread_members) {
    out += std::to_string(tm.line);
    AppendStr(out, tm.cls);
    AppendStr(out, tm.name);
    out += '\n';
  }
  return out;
}

bool DeserializeFileModel(const std::string& path, std::string_view content,
                          std::string_view serialized, FileModel& out) {
  LineCursor cur{serialized, 0};
  std::vector<std::string_view> f;
  if (!cur.Next(f) || f.size() != 1 || f[0] != kModelCacheVersion) {
    return false;
  }
  FileModel m;
  m.path = path;
  std::uint64_t count = 0;
  if (!cur.Section("tok", count)) return false;
  m.tokens.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!cur.Next(f) || f.size() != 3) return false;
    std::uint64_t kind = 0;
    std::uint64_t line = 0;
    Token tok;
    if (!ParseNum(f[0], kind) || kind > 2 || !ParseNum(f[1], line) ||
        !ParseStr(f[2], tok.text) || tok.text.empty()) {
      return false;
    }
    tok.kind = static_cast<Token::Kind>(kind);
    tok.line = line;
    m.tokens.push_back(std::move(tok));
  }
  if (!cur.Section("fn", count)) return false;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!cur.Next(f) || f.size() != 8) return false;
    FunctionInfo fn;
    std::uint64_t line = 0;
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    std::uint64_t nparams = 0;
    if (!ParseNum(f[0], line) ||
        !ParseFlags(f[1], {&fn.returns_status, &fn.is_ctor, &fn.is_dtor,
                           &fn.mutates_tables, &fn.appends_summary,
                           &fn.encodes_record, &fn.decodes_record,
                           &fn.has_body}) ||
        !ParseNum(f[2], begin) || !ParseNum(f[3], end) ||
        !ParseNum(f[4], nparams) || !ParseStr(f[5], fn.cls) ||
        !ParseStr(f[6], fn.base) || !ParseStr(f[7], fn.qname)) {
      return false;
    }
    fn.line = line;
    fn.body_begin = begin;
    fn.body_end = end;
    if (fn.has_body &&
        (fn.body_begin >= m.tokens.size() || fn.body_end >= m.tokens.size())) {
      return false;
    }
    for (std::uint64_t p = 0; p < nparams; ++p) {
      if (!cur.Next(f) || f.size() != 4 || f[0] != "p") return false;
      Param param;
      if (!ParseFlags(f[1], {&param.is_ref, &param.is_const}) ||
          !ParseStr(f[2], param.name) || !ParseStr(f[3], param.type_head)) {
        return false;
      }
      fn.params.push_back(std::move(param));
    }
    m.functions.push_back(std::move(fn));
  }
  if (!cur.Section("st", count)) return false;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!cur.Next(f) || f.size() != 4) return false;
    StructInfo s;
    std::uint64_t line = 0;
    std::uint64_t nfields = 0;
    if (!ParseNum(f[0], line) ||
        !ParseFlags(f[1], {&s.namespace_scope, &s.fields_parsed}) ||
        !ParseNum(f[2], nfields) || !ParseStr(f[3], s.name)) {
      return false;
    }
    s.line = line;
    for (std::uint64_t k = 0; k < nfields; ++k) {
      if (!cur.Next(f) || f.size() != 6 || f[0] != "f") return false;
      FieldInfo field;
      std::uint64_t fline = 0;
      std::uint64_t alen = 0;
      if (!ParseNum(f[1], fline) ||
          !ParseFlags(f[2], {&field.is_pointer, &field.is_reference}) ||
          !ParseNum(f[3], alen) || !ParseStr(f[4], field.name) ||
          !ParseStr(f[5], field.type_head)) {
        return false;
      }
      field.line = fline;
      field.array_len = alen;
      s.fields.push_back(std::move(field));
    }
    m.structs.push_back(std::move(s));
  }
  if (!cur.Section("mem", count)) return false;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!cur.Next(f) || f.size() != 4 || f[0] != "m") return false;
    std::string cls;
    std::string name;
    std::string head;
    if (!ParseStr(f[1], cls) || !ParseStr(f[2], name) ||
        !ParseStr(f[3], head)) {
      return false;
    }
    m.members[cls][name] = head;
  }
  if (!cur.Section("ali", count)) return false;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!cur.Next(f) || f.size() != 3 || f[0] != "a") return false;
    std::string name;
    std::string head;
    if (!ParseStr(f[1], name) || !ParseStr(f[2], head)) return false;
    m.aliases[name] = head;
  }
  if (!cur.Section("enu", count)) return false;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!cur.Next(f) || f.size() != 3 || f[0] != "u") return false;
    std::string name;
    std::string head;
    if (!ParseStr(f[1], name) || !ParseStr(f[2], head)) return false;
    m.enums[name] = head;
  }
  if (!cur.Section("ed", count)) return false;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!cur.Next(f) || f.size() != 4) return false;
    EnumDef def;
    std::uint64_t line = 0;
    std::uint64_t nenum = 0;
    if (!ParseNum(f[0], line) || !ParseNum(f[1], nenum) ||
        !ParseStr(f[2], def.name) || !ParseStr(f[3], def.underlying)) {
      return false;
    }
    def.line = line;
    for (std::uint64_t k = 0; k < nenum; ++k) {
      if (!cur.Next(f) || f.size() != 3 || f[0] != "e") return false;
      Enumerator e;
      std::uint64_t eline = 0;
      if (!ParseNum(f[1], eline) || !ParseStr(f[2], e.name)) return false;
      e.line = eline;
      def.enumerators.push_back(std::move(e));
    }
    m.enum_defs.push_back(std::move(def));
  }
  if (!cur.Section("at", count)) return false;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!cur.Next(f) || f.size() != 4) return false;
    AtomicDecl a;
    std::uint64_t line = 0;
    std::uint64_t ann = 0;
    if (!ParseNum(f[0], line) || !ParseNum(f[1], ann) || ann > 2 ||
        !ParseStr(f[2], a.cls) || !ParseStr(f[3], a.name)) {
      return false;
    }
    a.line = line;
    a.ann = static_cast<AtomicAnn>(ann);
    m.atomics.push_back(std::move(a));
  }
  if (!cur.Section("th", count)) return false;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!cur.Next(f) || f.size() != 3) return false;
    ThreadMember tm;
    std::uint64_t line = 0;
    if (!ParseNum(f[0], line) || !ParseStr(f[1], tm.cls) ||
        !ParseStr(f[2], tm.name)) {
      return false;
    }
    tm.line = line;
    m.thread_members.push_back(std::move(tm));
  }
  // Lines derive from the content the caller just read, not the cache.
  m.raw = SplitLines(content);
  m.code = SplitLines(StripCommentsAndStrings(content));
  out = std::move(m);
  return true;
}

void FinishIndex(ProjectIndex& index, const std::vector<BodySummary>& bodies) {
  // may_append: transitive "calls something that appends a summary /
  // commit record". Seed with the annotated appenders, iterate to a
  // fixpoint. Unresolved calls fall back to matching any appender's
  // base name (generously: the fallback can only mark more functions
  // as appending, which weakens crash-order findings, never invents
  // one).
  index.may_append = index.annotated_appenders;
  // may_acquire: direct lock keys per function, then closure over
  // *resolved* calls only (an unresolved call contributing nothing is
  // an under-approximation, documented in STATIC_ANALYSIS.md).
  for (const BodySummary& body : bodies) {
    for (const BodyEvent& e : body.events) {
      if (e.kind == BodyEvent::Kind::kAcquire && !e.lock_key.empty()) {
        auto& modes = index.may_acquire[body.fn->qname];
        const auto [it, fresh] = modes.emplace(e.lock_key, e.acquire_shared);
        // Exclusive anywhere wins over shared.
        if (!fresh && !e.acquire_shared) it->second = false;
      }
      // may_join seed: any `.join()` call, regardless of receiver, so a
      // loop over a vector of threads still counts. The generosity can
      // only suppress thread-lifecycle findings, never create one.
      if (e.kind == BodyEvent::Kind::kCall && e.callee_base == "join") {
        index.may_join.insert(body.fn->qname);
      }
    }
  }
  bool changed = true;
  std::size_t rounds = 0;
  while (changed && ++rounds < 64) {
    changed = false;
    std::set<std::string> appender_bases;
    for (const std::string& q : index.may_append) {
      const std::size_t sep = q.rfind("::");
      appender_bases.insert(sep == std::string::npos ? q : q.substr(sep + 2));
    }
    std::set<std::string> join_bases;
    for (const std::string& q : index.may_join) {
      const std::size_t sep = q.rfind("::");
      join_bases.insert(sep == std::string::npos ? q : q.substr(sep + 2));
    }
    for (const BodySummary& body : bodies) {
      const std::string& self = body.fn->qname;
      for (const BodyEvent& e : body.events) {
        if (e.kind != BodyEvent::Kind::kCall) continue;
        const bool target_appends =
            (!e.callee_qname.empty() &&
             index.may_append.count(e.callee_qname) > 0) ||
            (e.callee_qname.empty() &&
             appender_bases.count(e.callee_base) > 0);
        if (target_appends && index.may_append.insert(self).second) {
          changed = true;
        }
        const bool target_joins =
            (!e.callee_qname.empty() &&
             index.may_join.count(e.callee_qname) > 0) ||
            (e.callee_qname.empty() && join_bases.count(e.callee_base) > 0);
        if (target_joins && index.may_join.insert(self).second) {
          changed = true;
        }
        if (!e.callee_qname.empty()) {
          const auto it = index.may_acquire.find(e.callee_qname);
          if (it != index.may_acquire.end()) {
            auto& mine = index.may_acquire[self];
            for (const auto& [key, shared] : it->second) {
              const auto [mit, fresh] = mine.emplace(key, shared);
              if (fresh) {
                changed = true;
              } else if (mit->second && !shared) {
                mit->second = false;  // exclusive wins
                changed = true;
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace aru::arulint
