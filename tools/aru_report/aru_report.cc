// aru_report: merges bench artifacts (BENCH_*.json), their embedded
// metrics registries and sampler time-series, and Chrome trace dumps
// (TRACE_*.json) into one markdown run report.
//
//   aru_report [--out=ARU_REPORT.md] [--trace=TRACE_x.json]... BENCH_*.json
//
// The tool is dependency-free on purpose: artifacts are produced by the
// bench binaries' hand-rolled JSON writers (bench_support/report.cc,
// obs::Registry::DumpJson, obs::Sampler::ToJson, Tracer::DumpChromeJson),
// and this parser accepts exactly that dialect (full JSON minus
// \uXXXX surrogate pairs, which none of the writers emit).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace aru::report {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;                           // kArray
  std::vector<std::pair<std::string, JsonValue>> fields;  // kObject, in order

  const JsonValue* Find(std::string_view key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [name, value] : fields) {
      if (name == key) return &value;
    }
    return nullptr;
  }
  double NumberOr(double fallback) const {
    return kind == Kind::kNumber ? number : fallback;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : p_(text.data()), end_(text.data() + text.size()) {}

  // Returns false (with error()) on malformed input.
  bool Parse(JsonValue* out) {
    if (!ParseValue(out)) return false;
    SkipSpace();
    if (p_ != end_) return Fail("trailing characters after value");
    return true;
  }
  const std::string& error() const { return error_; }

 private:
  bool Fail(const char* what) {
    if (error_.empty()) {
      error_ = std::string(what) + " at byte " +
               std::to_string(p_ - begin_of_error_marker_);
    }
    return false;
  }
  void SkipSpace() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (p_ == end_ || *p_ != c) return false;
    ++p_;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (p_ == end_) return Fail("unexpected end of input");
    switch (*p_) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->str);
      case 't':
      case 'f':
        return ParseLiteral(out);
      case 'n':
        return ParseLiteral(out);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++p_;  // '{'
    SkipSpace();
    if (Consume('}')) return true;
    while (true) {
      SkipSpace();
      std::string key;
      if (p_ == end_ || *p_ != '"' || !ParseString(&key)) {
        return Fail("expected object key");
      }
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->fields.emplace_back(std::move(key), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return true;
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++p_;  // '['
    if (Consume(']')) return true;
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->items.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return true;
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    ++p_;  // opening quote
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return Fail("truncated escape");
        switch (*p_) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            if (end_ - p_ < 5) return Fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char c = p_[i];
              code <<= 4;
              if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
              else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
              else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
              else return Fail("bad \\u escape");
            }
            // Writers only escape controls and ASCII; encode as UTF-8
            // for the BMP and leave surrogates unsupported.
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            p_ += 4;
            break;
          }
          default:
            return Fail("unknown escape");
        }
        ++p_;
      } else {
        *out += *p_;
        ++p_;
      }
    }
    if (p_ == end_) return Fail("unterminated string");
    ++p_;  // closing quote
    return true;
  }

  bool ParseLiteral(JsonValue* out) {
    const std::string_view rest(p_, static_cast<std::size_t>(end_ - p_));
    if (rest.substr(0, 4) == "true") {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      p_ += 4;
      return true;
    }
    if (rest.substr(0, 5) == "false") {
      out->kind = JsonValue::Kind::kBool;
      p_ += 5;
      return true;
    }
    if (rest.substr(0, 4) == "null") {
      out->kind = JsonValue::Kind::kNull;
      p_ += 4;
      return true;
    }
    return Fail("unknown literal");
  }

  bool ParseNumber(JsonValue* out) {
    char* after = nullptr;
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(p_, &after);
    if (after == p_) return Fail("expected number");
    p_ = after;
    return true;
  }

  const char* p_;
  const char* end_;
  const char* begin_of_error_marker_ = p_;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Formatting helpers.

std::string Num(double value) {
  char buf[64];
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      value < 1e15 && value > -1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", value);
  }
  return buf;
}

// ---------------------------------------------------------------------------
// Report sections.

void EmitScalars(const JsonValue& scalars, std::ostringstream& out) {
  if (scalars.fields.empty()) return;
  out << "| scalar | value |\n|---|---:|\n";
  for (const auto& [key, value] : scalars.fields) {
    out << "| " << key << " | " << Num(value.NumberOr(0)) << " |\n";
  }
  out << "\n";
}

void EmitHistograms(const JsonValue& histograms, std::ostringstream& out) {
  if (histograms.fields.empty()) return;
  out << "### Histograms\n\n"
      << "| histogram | count | mean | p50 | p99 | max |\n"
      << "|---|---:|---:|---:|---:|---:|\n";
  for (const auto& [name, h] : histograms.fields) {
    const JsonValue* count = h.Find("count");
    if (count == nullptr || count->NumberOr(0) == 0) continue;
    auto cell = [&h](const char* key) {
      const JsonValue* v = h.Find(key);
      return v != nullptr ? Num(v->NumberOr(0)) : std::string("-");
    };
    out << "| " << name << " | " << Num(count->NumberOr(0)) << " | "
        << cell("mean") << " | " << cell("p50") << " | " << cell("p99")
        << " | " << cell("max") << " |\n";
  }
  out << "\n";
}

// Per-site lock waits: pairs aru_lock_contended_total_<site>_<mode>
// (counter) with aru_lock_wait_us_<site>_<mode> (histogram).
void EmitLockContention(const JsonValue& metrics, std::ostringstream& out) {
  const JsonValue* counters = metrics.Find("counters");
  const JsonValue* histograms = metrics.Find("histograms");
  if (counters == nullptr) return;
  constexpr std::string_view kPrefix = "aru_lock_contended_total_";
  bool any = false;
  std::ostringstream table;
  table << "### Lock contention by site\n\n"
        << "| site | mode | contended | wait p50 us | wait p99 us | wait max us |\n"
        << "|---|---|---:|---:|---:|---:|\n";
  for (const auto& [name, value] : counters->fields) {
    if (name.rfind(kPrefix, 0) != 0) continue;
    const std::string site_mode = name.substr(kPrefix.size());
    std::string site = site_mode;
    std::string mode = "exclusive";
    for (const char* suffix : {"_exclusive", "_shared"}) {
      const std::size_t len = std::strlen(suffix);
      if (site_mode.size() > len &&
          site_mode.compare(site_mode.size() - len, len, suffix) == 0) {
        site = site_mode.substr(0, site_mode.size() - len);
        mode = suffix + 1;
        break;
      }
    }
    std::string p50 = "-", p99 = "-", max = "-";
    if (histograms != nullptr) {
      if (const JsonValue* h =
              histograms->Find("aru_lock_wait_us_" + site_mode)) {
        if (const JsonValue* v = h->Find("p50")) p50 = Num(v->NumberOr(0));
        if (const JsonValue* v = h->Find("p99")) p99 = Num(v->NumberOr(0));
        if (const JsonValue* v = h->Find("max")) max = Num(v->NumberOr(0));
      }
    }
    table << "| " << site << " | " << mode << " | " << Num(value.NumberOr(0))
          << " | " << p50 << " | " << p99 << " | " << max << " |\n";
    any = true;
  }
  if (any) out << table.str() << "\n";
}

void EmitTimeseries(const JsonValue& timeseries, std::ostringstream& out) {
  const JsonValue* ts = timeseries.Find("ts_us");
  const JsonValue* series = timeseries.Find("series");
  if (ts == nullptr || series == nullptr || ts->items.empty()) return;
  const JsonValue* period = timeseries.Find("period_ms");
  const JsonValue* dropped = timeseries.Find("dropped");
  const double span_us = ts->items.back().NumberOr(0) - ts->items.front().NumberOr(0);
  out << "### Time series ("
      << Num(static_cast<double>(ts->items.size())) << " samples, period "
      << (period != nullptr ? Num(period->NumberOr(0)) : "?") << " ms, "
      << Num(span_us / 1000.0) << " ms window, "
      << (dropped != nullptr ? Num(dropped->NumberOr(0)) : "0")
      << " dropped)\n\n"
      << "| series | first | last | min | max |\n|---|---:|---:|---:|---:|\n";
  for (const auto& [name, values] : series->fields) {
    if (values.items.empty()) continue;
    double min = values.items.front().NumberOr(0);
    double max = min;
    for (const JsonValue& v : values.items) {
      min = std::min(min, v.NumberOr(0));
      max = std::max(max, v.NumberOr(0));
    }
    out << "| " << name << " | " << Num(values.items.front().NumberOr(0))
        << " | " << Num(values.items.back().NumberOr(0)) << " | " << Num(min)
        << " | " << Num(max) << " |\n";
  }
  out << "\n";
}

bool EmitBench(const std::string& path, const JsonValue& root,
               std::ostringstream& out) {
  const JsonValue* name = root.Find("name");
  out << "## Bench: " << (name != nullptr ? name->str : path) << "\n\n"
      << "Source: `" << path << "`\n\n";
  if (const JsonValue* config = root.Find("config")) {
    for (const auto& [key, value] : config->fields) {
      out << "- " << key << ": " << value.str << "\n";
    }
    if (!config->fields.empty()) out << "\n";
  }
  if (const JsonValue* scalars = root.Find("scalars")) {
    EmitScalars(*scalars, out);
  }
  if (const JsonValue* metrics = root.Find("metrics")) {
    EmitLockContention(*metrics, out);
    if (const JsonValue* histograms = metrics->Find("histograms")) {
      EmitHistograms(*histograms, out);
    }
  }
  if (const JsonValue* timeseries = root.Find("timeseries")) {
    EmitTimeseries(*timeseries, out);
  }
  return true;
}

// Chrome trace: aggregate span events by name, then break the critical
// path down under every root span (span_id set, parent_id 0) by
// summing descendant self-time per name — the offline mirror of
// obs::SpanBreakdown.
struct SpanAgg {
  std::uint64_t count = 0;
  double total_us = 0;
  double max_us = 0;
};

void EmitTrace(const std::string& path, const JsonValue& root,
               std::ostringstream& out) {
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr) return;
  out << "## Trace: `" << path << "`\n\n";

  std::map<std::string, SpanAgg> by_name;
  // parent span id -> indices of child span events.
  std::map<std::uint64_t, std::vector<std::size_t>> children;
  struct SpanEvent {
    const JsonValue* event;
    std::uint64_t id;
    std::uint64_t parent;
  };
  std::vector<SpanEvent> spans;
  for (const JsonValue& event : events->items) {
    const JsonValue* name = event.Find("name");
    const JsonValue* dur = event.Find("dur");
    if (name == nullptr || dur == nullptr) continue;
    SpanAgg& agg = by_name[name->str];
    agg.count += 1;
    agg.total_us += dur->NumberOr(0);
    agg.max_us = std::max(agg.max_us, dur->NumberOr(0));
    if (const JsonValue* args = event.Find("args")) {
      const JsonValue* id = args->Find("span_id");
      const JsonValue* parent = args->Find("parent_id");
      if (id != nullptr && id->NumberOr(0) != 0) {
        const auto span_id = static_cast<std::uint64_t>(id->NumberOr(0));
        const auto parent_id = static_cast<std::uint64_t>(
            parent != nullptr ? parent->NumberOr(0) : 0);
        spans.push_back({&event, span_id, parent_id});
        if (parent_id != 0) {
          children[parent_id].push_back(spans.size() - 1);
        }
      }
    }
  }

  out << "| event | count | total us | mean us | max us |\n"
      << "|---|---:|---:|---:|---:|\n";
  for (const auto& [name, agg] : by_name) {
    out << "| " << name << " | " << Num(static_cast<double>(agg.count))
        << " | " << Num(agg.total_us) << " | "
        << Num(agg.total_us / static_cast<double>(agg.count)) << " | "
        << Num(agg.max_us) << " |\n";
  }
  out << "\n";

  // Critical path: descendants of root spans, grouped by name.
  std::map<std::string, SpanAgg> under_roots;
  std::map<std::string, bool> root_names;
  for (const SpanEvent& span : spans) {
    if (span.parent != 0) continue;
    if (const JsonValue* n = span.event->Find("name")) root_names[n->str] = true;
    std::vector<std::uint64_t> frontier = {span.id};
    while (!frontier.empty()) {
      const std::uint64_t id = frontier.back();
      frontier.pop_back();
      const auto it = children.find(id);
      if (it == children.end()) continue;
      for (const std::size_t child : it->second) {
        const JsonValue* n = spans[child].event->Find("name");
        const JsonValue* dur = spans[child].event->Find("dur");
        if (n != nullptr && dur != nullptr) {
          SpanAgg& agg = under_roots[n->str];
          agg.count += 1;
          agg.total_us += dur->NumberOr(0);
          agg.max_us = std::max(agg.max_us, dur->NumberOr(0));
        }
        frontier.push_back(spans[child].id);
      }
    }
  }
  if (!under_roots.empty()) {
    std::vector<std::pair<std::string, SpanAgg>> sorted(under_roots.begin(),
                                                        under_roots.end());
    std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
      return a.second.total_us > b.second.total_us;
    });
    std::string roots;
    for (const auto& [name, unused] : root_names) {
      if (!roots.empty()) roots += ", ";
      roots += name;
    }
    out << "### Critical path under root spans (" << roots << ")\n\n"
        << "| child span | count | total us | mean us |\n"
        << "|---|---:|---:|---:|\n";
    for (const auto& [name, agg] : sorted) {
      out << "| " << name << " | " << Num(static_cast<double>(agg.count))
          << " | " << Num(agg.total_us) << " | "
          << Num(agg.total_us / static_cast<double>(agg.count)) << " |\n";
    }
    out << "\n";
  }
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return false;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  *out = buffer.str();
  return true;
}

int Main(int argc, char** argv) {
  std::string out_path = "ARU_REPORT.md";
  std::vector<std::string> bench_paths;
  std::vector<std::string> trace_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_paths.emplace_back(arg.substr(8));
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: aru_report [--out=ARU_REPORT.md] [--trace=TRACE.json]... "
          "BENCH_*.json...\n");
      return 0;
    } else {
      bench_paths.emplace_back(arg);
    }
  }
  if (bench_paths.empty() && trace_paths.empty()) {
    std::fprintf(stderr, "aru_report: no input files (try --help)\n");
    return 2;
  }

  std::ostringstream report;
  report << "# ARU run report\n\n";
  int failures = 0;
  for (const std::string& path : bench_paths) {
    std::string text;
    if (!ReadFile(path, &text)) {
      std::fprintf(stderr, "aru_report: cannot read %s\n", path.c_str());
      ++failures;
      continue;
    }
    JsonValue root;
    JsonParser parser(text);
    if (!parser.Parse(&root)) {
      std::fprintf(stderr, "aru_report: %s: %s\n", path.c_str(),
                   parser.error().c_str());
      ++failures;
      continue;
    }
    EmitBench(path, root, report);
  }
  for (const std::string& path : trace_paths) {
    std::string text;
    if (!ReadFile(path, &text)) {
      std::fprintf(stderr, "aru_report: cannot read %s\n", path.c_str());
      ++failures;
      continue;
    }
    JsonValue root;
    JsonParser parser(text);
    if (!parser.Parse(&root)) {
      std::fprintf(stderr, "aru_report: %s: %s\n", path.c_str(),
                   parser.error().c_str());
      ++failures;
      continue;
    }
    EmitTrace(path, root, report);
  }

  std::ofstream file(out_path, std::ios::trunc);
  if (!file) {
    std::fprintf(stderr, "aru_report: cannot write %s\n", out_path.c_str());
    return 1;
  }
  file << report.str();
  std::printf("aru_report: wrote %s\n", out_path.c_str());
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace aru::report

int main(int argc, char** argv) { return aru::report::Main(argc, argv); }
