// Transactions as direct Logical Disk clients (paper §3): isolation by
// strict two-phase locking, atomicity by ARUs, durability by flush-on-
// commit. Several threads transfer between shared accounts; wait-die
// resolves every deadlock shape; the invariant survives both the
// concurrency and a final power failure.
//
//   ./examples/transactions
#include <cstdio>
#include <thread>
#include <vector>

#include "blockdev/mem_disk.h"
#include "lld/lld.h"
#include "txn/txn.h"
#include "util/rng.h"

using namespace aru;

namespace {

constexpr int kAccounts = 8;
constexpr std::uint64_t kInitialBalance = 1000;

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

std::uint64_t DecodeBalance(const Bytes& block) { return GetU64(block); }

Bytes EncodeBalance(std::uint64_t value, std::uint32_t block_size) {
  Bytes block(block_size);
  Bytes encoded;
  PutU64(encoded, value);
  std::copy(encoded.begin(), encoded.end(), block.begin());
  return block;
}

}  // namespace

int main() {
  auto device = std::make_unique<MemDisk>(64 * 1024 * 1024 / 512);
  lld::Options options;
  Check(lld::Lld::Format(*device, options), "Format");
  auto disk = lld::Lld::Open(*device, options);
  Check(disk.status(), "Open");
  txn::TransactionManager manager(**disk);

  // Set up the accounts.
  std::vector<ld::BlockId> accounts;
  {
    auto list = (*disk)->NewList();
    Check(list.status(), "NewList");
    ld::BlockId pred = ld::kListHead;
    for (int i = 0; i < kAccounts; ++i) {
      auto block = (*disk)->NewBlock(*list, pred);
      Check(block.status(), "NewBlock");
      pred = *block;
      Check((*disk)->Write(pred, EncodeBalance(kInitialBalance, 4096)),
            "Write");
      accounts.push_back(pred);
    }
    Check((*disk)->Flush(), "Flush");
  }

  // Hammer the accounts from several threads.
  std::vector<std::thread> threads;
  std::atomic<int> committed{0};
  std::atomic<int> failed{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < 250; ++i) {
        const auto from = accounts[rng.Below(accounts.size())];
        const auto to = accounts[rng.Below(accounts.size())];
        if (from == to) continue;
        const std::uint64_t amount = rng.Range(1, 50);
        const Status status = manager.RunTransaction(
            [&](txn::Transaction& txn) -> Status {
              Bytes balance(4096);
              ARU_RETURN_IF_ERROR(txn.Read(from, balance));
              const std::uint64_t have = DecodeBalance(balance);
              if (have < amount) {
                return FailedPreconditionError("insufficient funds");
              }
              ARU_RETURN_IF_ERROR(
                  txn.Write(from, EncodeBalance(have - amount, 4096)));
              ARU_RETURN_IF_ERROR(txn.Read(to, balance));
              return txn.Write(
                  to, EncodeBalance(DecodeBalance(balance) + amount, 4096));
            },
            txn::Durability::kNone, /*max_attempts=*/64);
        if (status.ok()) {
          ++committed;
        } else {
          ++failed;  // insufficient funds or retries exhausted
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  Check((*disk)->Flush(), "final Flush");

  std::uint64_t total = 0;
  Bytes balance(4096);
  for (const ld::BlockId account : accounts) {
    Check((*disk)->Read(account, balance), "Read");
    total += DecodeBalance(balance);
  }
  std::printf("%d transfers committed, %d declined; total balance %llu "
              "(expected %llu) — conserved under 4-way contention\n",
              committed.load(), failed.load(),
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(kAccounts * kInitialBalance));

  // Pull the plug and re-add: still conserved.
  auto survivor = MemDisk::FromImage(device->CopyImage());
  auto recovered = lld::Lld::Open(*survivor, options);
  Check(recovered.status(), "recovery");
  total = 0;
  for (const ld::BlockId account : accounts) {
    Check((*recovered)->Read(account, balance), "Read after crash");
    total += DecodeBalance(balance);
  }
  std::printf("after power failure + recovery: total balance %llu — no "
              "transfer ever tore\n",
              static_cast<unsigned long long>(total));
  std::printf("transactions OK\n");
  return total == kAccounts * kInitialBalance ? 0 : 1;
}
