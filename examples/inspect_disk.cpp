// Disk inspector: dumps the on-disk structures of an LLD partition —
// superblock geometry, checkpoint regions, segment slots, and the
// summary records of any valid segment. Run it on a file-backed image,
// or with no arguments it builds a small demo image (including an
// uncommitted ARU) and inspects that.
//
//   ./examples/inspect_disk [image-file]
#include <cstdio>
#include <memory>
#include <string>

#include "blockdev/file_disk.h"
#include "blockdev/mem_disk.h"
#include "lld/checkpoint.h"
#include "lld/layout.h"
#include "lld/lld.h"
#include "lld/summary.h"
#include "util/crc32.h"

using namespace aru;
using namespace aru::lld;

namespace {

const char* RecordName(const Record& record) {
  switch (static_cast<RecordType>(record.index() + 1)) {
    case RecordType::kWrite: return "write";
    case RecordType::kAllocBlock: return "alloc-block";
    case RecordType::kAllocList: return "alloc-list";
    case RecordType::kInsert: return "insert";
    case RecordType::kDeleteBlock: return "delete-block";
    case RecordType::kDeleteList: return "delete-list";
    case RecordType::kCommit: return "commit";
    case RecordType::kAbort: return "abort";
    case RecordType::kRewrite: return "rewrite";
    case RecordType::kMove: return "move";
  }
  return "?";
}

void DumpSummary(const std::vector<Record>& records) {
  for (const Record& record : records) {
    std::printf("    lsn %6llu  %-12s aru=%llu",
                static_cast<unsigned long long>(RecordLsn(record)),
                RecordName(record),
                static_cast<unsigned long long>(RecordAru(record).value()));
    if (const auto* w = std::get_if<WriteRecord>(&record)) {
      std::printf("  block=%llu phys=%s",
                  static_cast<unsigned long long>(w->block.value()),
                  w->phys.ToString().c_str());
    } else if (const auto* i = std::get_if<InsertRecord>(&record)) {
      std::printf("  list=%llu block=%llu pred=%llu",
                  static_cast<unsigned long long>(i->list.value()),
                  static_cast<unsigned long long>(i->block.value()),
                  static_cast<unsigned long long>(i->pred.value()));
    } else if (const auto* a = std::get_if<AllocBlockRecord>(&record)) {
      std::printf("  block=%llu list=%llu",
                  static_cast<unsigned long long>(a->block.value()),
                  static_cast<unsigned long long>(a->list.value()));
    }
    std::printf("\n");
  }
}

int Inspect(BlockDevice& device) {
  auto geometry = ReadSuperblock(device);
  if (!geometry.ok()) {
    std::fprintf(stderr, "not an LLD partition: %s\n",
                 geometry.status().ToString().c_str());
    return 1;
  }
  const Geometry& g = *geometry;
  std::printf("superblock:\n");
  std::printf("  block size      %u\n", g.block_size);
  std::printf("  segment size    %u (%u blocks max)\n", g.segment_size,
              g.blocks_per_segment_max());
  std::printf("  segment slots   %u (first at sector %llu)\n", g.slot_count,
              static_cast<unsigned long long>(g.data_start_sector));
  std::printf("  logical blocks  %llu\n",
              static_cast<unsigned long long>(g.capacity_blocks));
  std::printf("  checkpoints     sectors %llu / %llu, %llu bytes each\n",
              static_cast<unsigned long long>(g.checkpoint_a_sector),
              static_cast<unsigned long long>(g.checkpoint_b_sector),
              static_cast<unsigned long long>(g.checkpoint_capacity));

  CheckpointData ckpt;
  BlockMap blocks;
  ListTable lists;
  if (ReadNewestCheckpoint(device, g, ckpt, blocks, lists).ok()) {
    std::printf("\nnewest checkpoint: stamp %llu\n",
                static_cast<unsigned long long>(ckpt.stamp));
    std::printf("  covered seq     %llu (segments beyond it roll forward)\n",
                static_cast<unsigned long long>(ckpt.covered_seq));
    std::printf("  next lsn/seq    %llu / %llu\n",
                static_cast<unsigned long long>(ckpt.next_lsn),
                static_cast<unsigned long long>(ckpt.next_seq));
    std::printf("  tables          %zu blocks, %zu lists\n", blocks.size(),
                lists.size());
  } else {
    std::printf("\nno valid checkpoint\n");
  }

  std::printf("\nsegment slots:\n");
  Bytes sector(g.sector_size);
  Bytes slot_buf(g.segment_size);
  for (std::uint32_t slot = 0; slot < g.slot_count; ++slot) {
    const std::uint64_t last =
        g.slot_first_sector(slot) + g.sectors_per_segment() - 1;
    if (!device.Read(last, sector).ok()) continue;
    const auto footer = DecodeFooter(ByteSpan(sector).last(kFooterSize));
    if (!footer.ok()) continue;  // free / torn
    std::printf("  slot %3u  seq %6llu  last lsn %6llu  %4u records%s\n",
                slot, static_cast<unsigned long long>(footer->seq),
                static_cast<unsigned long long>(footer->last_lsn),
                footer->record_count,
                footer->seq > ckpt.covered_seq ? "  [roll-forward]" : "");
    if (footer->seq > ckpt.covered_seq) {
      // Dump the summaries recovery would replay.
      if (!device.Read(g.slot_first_sector(slot), slot_buf).ok()) continue;
      const auto summary = ByteSpan(slot_buf).subspan(
          g.segment_size - kFooterSize - footer->summary_len,
          footer->summary_len);
      if (Crc32c(summary) != footer->summary_crc) {
        std::printf("    (summary CRC mismatch)\n");
        continue;
      }
      if (const auto records = DecodeSummary(summary); records.ok()) {
        DumpSummary(*records);
      }
    }
  }
  return 0;
}

// Builds a small demo image with interesting on-disk state: a flushed
// commit, plus an ARU whose data reached disk but whose commit did not.
std::unique_ptr<MemDisk> BuildDemoImage() {
  auto device = std::make_unique<MemDisk>(16 * 1024 * 1024 / 512);
  Options options;
  options.segment_size = 64 * 1024;
  (void)Lld::Format(*device, options);
  auto disk = Lld::Open(*device, options).value();
  const auto list = disk->NewList().value();
  const auto block = disk->NewBlock(list, ld::kListHead).value();
  (void)disk->Write(block, Bytes(4096, std::byte{1}));
  (void)disk->Flush();

  const auto aru = disk->BeginARU().value();
  const auto shadow_block = disk->NewBlock(list, block, aru).value();
  (void)disk->Write(shadow_block, Bytes(4096, std::byte{2}), aru);
  (void)disk->EndARU(aru);

  const auto doomed = disk->BeginARU().value();
  (void)disk->Write(block, Bytes(4096, std::byte{3}), doomed);
  (void)disk->Flush();  // the write is on disk; the commit never will be
  // "power failure": drop the Lld without EndARU/Close.
  return device;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    auto device = FileDisk::Open(argv[1]);
    if (!device.ok()) {
      std::fprintf(stderr, "cannot open %s: %s\n", argv[1],
                   device.status().ToString().c_str());
      return 1;
    }
    return Inspect(**device);
  }
  std::printf("(no image given: inspecting a freshly built demo image "
              "with an uncommitted ARU on it)\n\n");
  auto device = BuildDemoImage();
  return Inspect(*device);
}
