// A database index as a direct Logical Disk client: a B+tree whose
// node splits — multi-block structural updates — are crash-atomic
// thanks to ARUs, with no write-ahead log of its own.
//
//   ./examples/btree_index
#include <cstdio>

#include "blockdev/mem_disk.h"
#include "btree/btree.h"
#include "lld/lld.h"

using namespace aru;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  auto device = std::make_unique<MemDisk>(256 * 1024 * 1024 / 512);
  lld::Options options;
  Check(lld::Lld::Format(*device, options), "Format");
  auto disk = lld::Lld::Open(*device, options);
  Check(disk.status(), "Open");

  auto tree = btree::BTree::Create(**disk);
  Check(tree.status(), "Create");
  const ld::ListId tree_list = (*tree)->list();

  // Load an index of 50,000 entries.
  for (std::uint64_t k = 1; k <= 50000; ++k) {
    Check((*tree)->Put(k * 7 % 100000, k), "Put");
  }
  auto stats = (*tree)->Stats();
  Check(stats.status(), "Stats");
  std::printf("indexed %llu entries: height %u, %llu nodes, %llu splits "
              "(each split = one ARU covering 3+ blocks)\n",
              static_cast<unsigned long long>(stats->entries), stats->height,
              static_cast<unsigned long long>(stats->nodes),
              static_cast<unsigned long long>(stats->splits));

  auto value = (*tree)->Get(7);
  Check(value.status(), "Get");
  std::printf("lookup key 7 -> %llu\n",
              static_cast<unsigned long long>(*value));

  std::uint64_t in_range = 0;
  Check((*tree)->Scan(1000, 2000,
                      [&in_range](std::uint64_t, std::uint64_t) {
                        ++in_range;
                      }),
        "Scan");
  std::printf("range scan [1000, 2000]: %llu entries\n",
              static_cast<unsigned long long>(in_range));

  Check((*tree)->Validate(), "Validate");
  Check((*disk)->Flush(), "Flush");

  // Crash mid-split: fill to a node boundary, split without flushing,
  // pull the plug.
  tree->reset();
  {
    auto reopened = btree::BTree::Open(**disk, tree_list);
    Check(reopened.status(), "reopen");
    for (std::uint64_t k = 200000; k < 200300; ++k) {
      Check((*reopened)->Put(k, k), "Put (unflushed)");
    }
    // no Flush: the power goes now.
  }
  auto survivor = MemDisk::FromImage(device->CopyImage());
  auto recovered_disk = lld::Lld::Open(*survivor, options);
  Check(recovered_disk.status(), "recovery");
  auto recovered = btree::BTree::Open(**recovered_disk, tree_list);
  Check(recovered.status(), "reopen after crash");
  Check((*recovered)->Validate(), "Validate after crash");
  auto recovered_stats = (*recovered)->Stats();
  Check(recovered_stats.status(), "Stats");
  std::printf("after crash: tree validates clean with %llu entries — no "
              "torn splits, no recovery code in the B+tree itself\n",
              static_cast<unsigned long long>(recovered_stats->entries));
  std::printf("btree_index OK\n");
  return 0;
}
