// Observability inspector: opens an LLD partition (running crash
// recovery), then prints everything the obs layer knows — per-phase
// recovery timings, the full metrics registry (counters, gauges,
// latency histograms with percentiles), and device-level I/O
// accounting — and writes the event trace of the run as Chrome
// trace_event JSON (load lld_stats_trace.json in chrome://tracing or
// https://ui.perfetto.dev).
//
//   ./examples/lld_stats [image-file]
//
// With no arguments it builds a demo image in memory first: a burst of
// committed and aborted ARUs, some simple writes, a crash mid-ARU, and
// the recovery from it.
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "blockdev/file_disk.h"
#include "blockdev/mem_disk.h"
#include "lld/lld.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace aru;

namespace {

// Builds the demo image: a little of everything, ending with an
// in-flight (uncommitted) ARU so recovery has work to do.
Status BuildDemoImage(MemDisk& device, const lld::Options& options) {
  ARU_RETURN_IF_ERROR(lld::Lld::Format(device, options));
  ARU_ASSIGN_OR_RETURN(auto disk, lld::Lld::Open(device, options));

  Bytes payload(disk->block_size(), std::byte{42});
  ARU_ASSIGN_OR_RETURN(const ld::ListId list, disk->NewList());
  ld::BlockId pred = ld::kListHead;
  for (int i = 0; i < 200; ++i) {
    ARU_ASSIGN_OR_RETURN(pred, disk->NewBlock(list, pred));
    ARU_RETURN_IF_ERROR(disk->Write(pred, payload));
  }

  for (int i = 0; i < 50; ++i) {
    ARU_ASSIGN_OR_RETURN(const ld::AruId aru, disk->BeginARU());
    ARU_ASSIGN_OR_RETURN(const ld::ListId alist, disk->NewList(aru));
    ARU_ASSIGN_OR_RETURN(const ld::BlockId block,
                         disk->NewBlock(alist, ld::kListHead, aru));
    ARU_RETURN_IF_ERROR(disk->Write(block, payload, aru));
    if (i % 5 == 0) {
      ARU_RETURN_IF_ERROR(disk->AbortARU(aru));
    } else {
      ARU_RETURN_IF_ERROR(disk->EndARU(aru));
    }
  }
  ARU_RETURN_IF_ERROR(disk->Flush());

  // Leave an ARU in flight and "crash": drop the Lld without Close().
  ARU_ASSIGN_OR_RETURN(const ld::AruId orphan, disk->BeginARU());
  ARU_ASSIGN_OR_RETURN(const ld::ListId olist, disk->NewList(orphan));
  ARU_ASSIGN_OR_RETURN(const ld::BlockId oblock,
                       disk->NewBlock(olist, ld::kListHead, orphan));
  ARU_RETURN_IF_ERROR(disk->Write(oblock, payload, orphan));
  ARU_RETURN_IF_ERROR(disk->Flush());
  disk.reset();  // no Close(): the next Open() must roll forward
  return Status::Ok();
}

void PrintRecoveryReport(const lld::RecoveryReport& report) {
  std::printf("Recovery\n");
  std::printf("  segments replayed        %llu\n",
              static_cast<unsigned long long>(report.segments_replayed));
  std::printf("  records replayed         %llu\n",
              static_cast<unsigned long long>(report.records_replayed));
  std::printf("  committed ARUs           %llu\n",
              static_cast<unsigned long long>(report.committed_arus));
  std::printf("  uncommitted ARUs undone  %llu\n",
              static_cast<unsigned long long>(report.uncommitted_arus_undone));
  std::printf("  orphan blocks reclaimed  %llu\n",
              static_cast<unsigned long long>(report.orphan_blocks_reclaimed));
  std::printf("  phases (wall us): checkpoint load %llu, summary scan %llu, "
              "replay %llu,\n"
              "                    orphan sweep %llu, checkpoint %llu, "
              "total %llu\n",
              static_cast<unsigned long long>(report.checkpoint_load_us),
              static_cast<unsigned long long>(report.summary_scan_us),
              static_cast<unsigned long long>(report.replay_us),
              static_cast<unsigned long long>(report.orphan_reclaim_us),
              static_cast<unsigned long long>(report.checkpoint_us),
              static_cast<unsigned long long>(report.total_us));
}

void PrintPercentiles(const obs::Registry& registry, const char* name,
                      const char* label) {
  const obs::Histogram* histogram = registry.FindHistogram(name);
  if (histogram == nullptr) return;
  const obs::Histogram::Snapshot snap = histogram->TakeSnapshot();
  if (snap.count == 0) return;
  std::printf("  %-24s p50 %8.1f  p95 %8.1f  p99 %8.1f  max %8llu  "
              "(%llu samples)\n",
              label, snap.Percentile(50), snap.Percentile(95),
              snap.Percentile(99), static_cast<unsigned long long>(snap.max),
              static_cast<unsigned long long>(snap.count));
}

int Run(const std::string& image) {
  obs::Tracer::Default().set_enabled(true);
  obs::Tracer::Default().Clear();

  lld::Options options;
  std::unique_ptr<BlockDevice> device;
  if (image.empty()) {
    auto mem = std::make_unique<MemDisk>(128 * 1024 * 1024 / 512);
    options.capacity_blocks = 20000;
    if (const Status s = BuildDemoImage(*mem, options); !s.ok()) {
      std::fprintf(stderr, "demo image: %s\n", s.ToString().c_str());
      return 1;
    }
    device = std::move(mem);
    std::printf("demo image built in memory (200 writes, 50 ARUs, crash "
                "with one in flight)\n\n");
  } else {
    auto file = FileDisk::Open(image);
    if (!file.ok()) {
      std::fprintf(stderr, "%s: %s\n", image.c_str(),
                   file.status().ToString().c_str());
      return 1;
    }
    device = std::move(*file);
  }

  auto disk = lld::Lld::Open(*device, options);
  if (!disk.ok()) {
    std::fprintf(stderr, "open: %s\n", disk.status().ToString().c_str());
    return 1;
  }

  if (image.empty()) {
    // Exercise the recovered disk a little so the latency histograms
    // below have samples (the pre-crash workload reported into the
    // demo builder's disk, a separate registry).
    Bytes payload((*disk)->block_size(), std::byte{7});
    Bytes out((*disk)->block_size());
    for (int i = 0; i < 25; ++i) {
      auto aru = (*disk)->BeginARU();
      if (!aru.ok()) break;
      auto list = (*disk)->NewList(*aru);
      if (!list.ok()) break;
      auto block = (*disk)->NewBlock(*list, ld::kListHead, *aru);
      if (!block.ok()) break;
      (void)(*disk)->Write(*block, payload, *aru);
      (void)(*disk)->EndARU(*aru);
      (void)(*disk)->Read(*block, out);
    }
    (void)(*disk)->Flush();
  }

  PrintRecoveryReport((*disk)->recovery_report());

  const obs::Registry& registry = (*disk)->registry();
  std::printf("\nLatency histograms (microseconds)\n");
  PrintPercentiles(registry, "aru_lld_commit_us", "ARU commit");
  PrintPercentiles(registry, "aru_lld_aru_lifetime_us", "ARU lifetime");
  PrintPercentiles(registry, "aru_lld_op_write_us", "Write");
  PrintPercentiles(registry, "aru_lld_op_read_us", "Read");
  PrintPercentiles(registry, "aru_lld_seal_us", "segment seal");
  PrintPercentiles(registry, "aru_lld_recovery_replay_us", "recovery replay");

  ExportDeviceStats(device->stats(), (*disk)->registry());

  std::printf("\n%s", registry.DumpText().c_str());

  const std::string trace_path = "lld_stats_trace.json";
  std::ofstream trace(trace_path, std::ios::trunc);
  trace << obs::Tracer::Default().DumpChromeJson();
  if (trace) {
    std::printf("\nwrote %s (%zu events) — load in chrome://tracing\n",
                trace_path.c_str(), obs::Tracer::Default().size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return Run(argc > 1 ? argv[1] : "");
}
