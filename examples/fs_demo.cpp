// MinixFS demo: the paper's headline use case. A file system whose
// create/delete operations run inside ARUs needs no fsck — after a
// power failure it mounts directly into a consistent state.
//
//   ./examples/fs_demo
#include <cstdio>
#include <memory>
#include <string>

#include "blockdev/mem_disk.h"
#include "lld/lld.h"
#include "minixfs/minix_fs.h"

using namespace aru;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  auto device = std::make_unique<MemDisk>(128 * 1024 * 1024 / 512);
  lld::Options options;

  // mkfs
  Check(lld::Lld::Format(*device, options), "Format");
  {
    auto disk = lld::Lld::Open(*device, options);
    Check(disk.status(), "Open");
    Check(minixfs::MinixFs::Mkfs(**disk), "Mkfs");
    auto fs = minixfs::MinixFs::Mount(**disk);
    Check(fs.status(), "Mount");

    // Build a small tree and make it durable.
    Check((*fs)->Mkdir("/projects").status(), "Mkdir");
    Check((*fs)->Mkdir("/projects/aru").status(), "Mkdir");
    const std::string text = "atomic recovery units for logical disks\n";
    Bytes content(text.size());
    std::memcpy(content.data(), text.data(), text.size());
    Check((*fs)->WriteFile("/projects/aru/README", content), "WriteFile");
    Check((*fs)->Sync(), "Sync");
    std::printf("wrote /projects/aru/README (%zu bytes), synced\n",
                content.size());

    // Now create a batch of files... and "lose power" before syncing.
    for (int i = 0; i < 25; ++i) {
      Check((*fs)->Create("/projects/aru/scratch" + std::to_string(i))
                .status(),
            "Create");
    }
    std::printf("created 25 unsynced files; pulling the plug now\n");
    // (no Sync, no Close: the process state simply vanishes)
  }

  // Power comes back: recover from exactly what was on the platters.
  auto survivor = MemDisk::FromImage(device->CopyImage());
  auto disk = lld::Lld::Open(*survivor, options);
  Check(disk.status(), "recovery Open");
  const auto& report = (*disk)->recovery_report();
  std::printf("recovered: %llu segments replayed, %llu ARUs committed, "
              "%llu uncommitted ARUs undone, %llu orphan blocks reclaimed\n",
              static_cast<unsigned long long>(report.segments_replayed),
              static_cast<unsigned long long>(report.committed_arus),
              static_cast<unsigned long long>(report.uncommitted_arus_undone),
              static_cast<unsigned long long>(
                  report.orphan_blocks_reclaimed));

  // No fsck: mount directly.
  auto fs = minixfs::MinixFs::Mount(**disk);
  Check(fs.status(), "remount");
  auto content = (*fs)->ReadFile("/projects/aru/README");
  Check(content.status(), "ReadFile");
  std::printf("README intact after crash: \"%.*s\"\n",
              static_cast<int>(content->size()) - 1,
              reinterpret_cast<const char*>(content->data()));

  auto entries = (*fs)->ReadDir("/projects/aru");
  Check(entries.status(), "ReadDir");
  std::printf("/projects/aru holds %zu entries after recovery "
              "(each unsynced create was undone whole — never a dangling "
              "i-node or directory entry)\n",
              entries->size());

  // The file system keeps working.
  Check((*fs)->WriteFile("/projects/aru/after-crash", content.value()),
        "WriteFile after recovery");
  Check((*fs)->Sync(), "Sync");
  std::printf("fs_demo OK\n");
  return 0;
}
