// A small persistent key-value store built directly on the Logical
// Disk — the "transaction-based systems as direct disk system clients"
// use case from the paper's §3.
//
// Layout: one LD list per bucket; each bucket block holds up to 63
// fixed-size records. A multi-key Put commits all its updates in one
// ARU: after any crash, either every key of the batch is updated or
// none is.
//
//   ./examples/kvstore
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "blockdev/mem_disk.h"
#include "ld/disk.h"
#include "lld/lld.h"

using namespace aru;

namespace {

constexpr std::size_t kBuckets = 16;
constexpr std::size_t kRecordSize = 64;  // 31-byte key, 31-byte value
constexpr std::size_t kKeyMax = 31;

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

class KvStore {
 public:
  explicit KvStore(ld::Disk& disk) : disk_(disk) {}

  // Creates the bucket lists on a fresh disk.
  Status Init() {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      ARU_ASSIGN_OR_RETURN(buckets_[i], disk_.NewList());
    }
    return Status::Ok();
  }

  // Applies all updates in one failure-atomic batch.
  Status PutBatch(const std::map<std::string, std::string>& updates) {
    ld::AruScope aru(disk_);
    ARU_RETURN_IF_ERROR(aru.status());
    for (const auto& [key, value] : updates) {
      ARU_RETURN_IF_ERROR(PutOne(key, value, aru.id()));
    }
    return aru.Commit();
  }

  Result<std::string> Get(const std::string& key) {
    const ld::ListId bucket = buckets_[Hash(key)];
    ARU_ASSIGN_OR_RETURN(const auto blocks, disk_.ListBlocks(bucket));
    Bytes data(disk_.block_size());
    for (const ld::BlockId block : blocks) {
      ARU_RETURN_IF_ERROR(disk_.Read(block, data));
      if (const auto found = FindInBlock(data, key)) return *found;
    }
    return NotFoundError("no such key: " + key);
  }

  Status Sync() { return disk_.Flush(); }

 private:
  static std::size_t Hash(const std::string& key) {
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : key) {
      h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    }
    return static_cast<std::size_t>(h % kBuckets);
  }

  std::optional<std::string> FindInBlock(const Bytes& data,
                                         const std::string& key) const {
    const std::size_t records = disk_.block_size() / kRecordSize;
    for (std::size_t i = 0; i < records; ++i) {
      const char* rec =
          reinterpret_cast<const char*>(data.data()) + i * kRecordSize;
      if (rec[0] == 0) continue;
      if (key == std::string(rec, strnlen(rec, kKeyMax))) {
        const char* val = rec + 32;
        return std::string(val, strnlen(val, kKeyMax));
      }
    }
    return std::nullopt;
  }

  Status PutOne(const std::string& key, const std::string& value,
                ld::AruId aru) {
    if (key.empty() || key.size() > kKeyMax || value.size() > kKeyMax) {
      return InvalidArgumentError("key/value too long");
    }
    const ld::ListId bucket = buckets_[Hash(key)];
    ARU_ASSIGN_OR_RETURN(const auto blocks, disk_.ListBlocks(bucket, aru));
    Bytes data(disk_.block_size());
    const std::size_t records = disk_.block_size() / kRecordSize;

    // Overwrite in place if present; remember the first free slot.
    ld::BlockId free_block;
    std::size_t free_slot = 0;
    for (const ld::BlockId block : blocks) {
      ARU_RETURN_IF_ERROR(disk_.Read(block, data, aru));
      for (std::size_t i = 0; i < records; ++i) {
        char* rec = reinterpret_cast<char*>(data.data()) + i * kRecordSize;
        if (rec[0] == 0) {
          if (!free_block.valid()) {
            free_block = block;
            free_slot = i;
          }
          continue;
        }
        if (key == std::string(rec, strnlen(rec, kKeyMax))) {
          WriteRecord(rec, key, value);
          return disk_.Write(block, data, aru);
        }
      }
    }

    if (free_block.valid()) {
      ARU_RETURN_IF_ERROR(disk_.Read(free_block, data, aru));
      WriteRecord(reinterpret_cast<char*>(data.data()) +
                      free_slot * kRecordSize,
                  key, value);
      return disk_.Write(free_block, data, aru);
    }

    // Bucket full: grow it by one block.
    const ld::BlockId pred = blocks.empty() ? ld::kListHead : blocks.back();
    ARU_ASSIGN_OR_RETURN(const ld::BlockId grown,
                         disk_.NewBlock(bucket, pred, aru));
    std::fill(data.begin(), data.end(), std::byte{0});
    WriteRecord(reinterpret_cast<char*>(data.data()), key, value);
    return disk_.Write(grown, data, aru);
  }

  static void WriteRecord(char* rec, const std::string& key,
                          const std::string& value) {
    std::memset(rec, 0, kRecordSize);
    std::memcpy(rec, key.data(), key.size());
    std::memcpy(rec + 32, value.data(), value.size());
  }

  ld::Disk& disk_;
  ld::ListId buckets_[kBuckets];
};

}  // namespace

int main() {
  MemDisk device(64 * 1024 * 1024 / 512);
  lld::Options options;
  Check(lld::Lld::Format(device, options), "Format");
  auto opened = lld::Lld::Open(device, options);
  Check(opened.status(), "Open");
  KvStore store(**opened);
  Check(store.Init(), "Init");

  // A multi-key transactional update: a tiny "account database".
  Check(store.PutBatch({{"alice", "70"}, {"bob", "30"}, {"epoch", "1"}}),
        "PutBatch");
  Check(store.Sync(), "Sync");

  auto alice = store.Get("alice");
  auto bob = store.Get("bob");
  Check(alice.status(), "Get alice");
  Check(bob.status(), "Get bob");
  std::printf("alice=%s bob=%s\n", alice->c_str(), bob->c_str());

  // Batched update of both accounts + the epoch, atomically.
  Check(store.PutBatch({{"alice", "50"}, {"bob", "50"}, {"epoch", "2"}}),
        "PutBatch 2");
  std::printf("after transfer: alice=%s bob=%s epoch=%s\n",
              store.Get("alice")->c_str(), store.Get("bob")->c_str(),
              store.Get("epoch")->c_str());

  // Lots of keys, to exercise bucket growth.
  std::map<std::string, std::string> many;
  for (int i = 0; i < 500; ++i) {
    many["key" + std::to_string(i)] = "value" + std::to_string(i);
  }
  Check(store.PutBatch(many), "PutBatch many");
  Check(store.Sync(), "Sync");
  std::printf("500-key batch committed; key250=%s\n",
              store.Get("key250")->c_str());
  std::printf("kvstore OK\n");
  return 0;
}
