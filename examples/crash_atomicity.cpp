// Crash atomicity demo: a two-block "funds transfer" interrupted by a
// power failure at every possible moment.
//
// A balance is split across two blocks (alice, bob). A transfer
// debits one and credits the other. Without ARUs, a crash between the
// two writes can persist a half-done transfer (money destroyed or
// created). Inside an ARU, every crash point recovers to either
// before or after the whole transfer — the invariant
// alice + bob == 100 holds at every crash point.
//
//   ./examples/crash_atomicity
#include <cstdio>
#include <memory>

#include "blockdev/fault_disk.h"
#include "blockdev/mem_disk.h"
#include "ld/disk.h"
#include "lld/lld.h"

using namespace aru;

namespace {

constexpr std::uint64_t kTotal = 100;

struct Accounts {
  ld::ListId list;
  ld::BlockId alice;
  ld::BlockId bob;
};

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

std::uint64_t ReadBalance(ld::Disk& disk, ld::BlockId block) {
  Bytes data(disk.block_size());
  Check(disk.Read(block, data), "Read balance");
  return GetU64(data);
}

void WriteBalance(ld::Disk& disk, ld::BlockId block, std::uint64_t value,
                  ld::AruId aru) {
  Bytes data(disk.block_size());
  Bytes encoded;
  PutU64(encoded, value);
  std::copy(encoded.begin(), encoded.end(), data.begin());
  const Status s = disk.Write(block, data, aru);
  // During the fault-injection sweep the power may fail mid-write;
  // that is the point of the experiment, so only report other errors.
  if (!s.ok() && s.code() != StatusCode::kUnavailable) {
    Check(s, "Write balance");
  }
}

// Runs one transfer that crashes after `crash_after` more sectors of
// device writes. Returns (alice+bob) after recovery, or kTotal+1 on an
// unrecoverable filesystem (never happens with ARUs).
std::uint64_t CrashedTransfer(bool use_aru, std::uint64_t crash_after) {
  auto inner = std::make_unique<MemDisk>(32 * 1024 * 1024 / 512);
  auto* mem = inner.get();
  FaultInjectionDisk device(std::move(inner));

  lld::Options options;
  options.segment_size = 128 * 1024;
  Check(lld::Lld::Format(device, options), "Format");
  Accounts accounts;
  {
    auto opened = lld::Lld::Open(device, options);
    Check(opened.status(), "Open");
    auto& disk = **opened;
    accounts.list = *disk.NewList();
    accounts.alice = *disk.NewBlock(accounts.list, ld::kListHead);
    accounts.bob = *disk.NewBlock(accounts.list, accounts.alice);
    WriteBalance(disk, accounts.alice, kTotal, ld::kNoAru);
    WriteBalance(disk, accounts.bob, 0, ld::kNoAru);
    Check(disk.Flush(), "Flush");

    // The transfer, with the power scheduled to fail.
    device.SchedulePowerCut(crash_after);
    ld::AruId aru = ld::kNoAru;
    if (use_aru) {
      if (auto begun = disk.BeginARU(); begun.ok()) aru = *begun;
    }
    WriteBalance(disk, accounts.alice, kTotal - 30, aru);
    (void)disk.Flush();  // try to make the debit persistent mid-transfer
    WriteBalance(disk, accounts.bob, 30, aru);
    if (aru.valid()) (void)disk.EndARU(aru);
    (void)disk.Flush();
  }

  // Power is gone; recover from the surviving image.
  auto survivor = MemDisk::FromImage(mem->CopyImage());
  auto recovered = lld::Lld::Open(*survivor, options);
  Check(recovered.status(), "recovery");
  auto& disk = **recovered;
  return ReadBalance(disk, accounts.alice) + ReadBalance(disk, accounts.bob);
}

}  // namespace

int main() {
  std::printf("sweeping crash points through a 2-block transfer...\n\n");
  for (const bool use_aru : {false, true}) {
    std::uint64_t violations = 0;
    std::uint64_t runs = 0;
    for (std::uint64_t crash_after = 1; crash_after <= 2000;
         crash_after += 37) {
      const std::uint64_t total = CrashedTransfer(use_aru, crash_after);
      ++runs;
      if (total != kTotal) ++violations;
    }
    std::printf("%-12s: %llu crash points, %llu atomicity violations "
                "(alice+bob != %llu)\n",
                use_aru ? "with ARU" : "without ARU",
                static_cast<unsigned long long>(runs),
                static_cast<unsigned long long>(violations),
                static_cast<unsigned long long>(kTotal));
  }
  std::printf(
      "\nWith the transfer inside an ARU, every crash point recovers to\n"
      "either the pre-transfer or the post-transfer state — never half.\n");
  return 0;
}
