// Quickstart: the Logical Disk API with atomic recovery units.
//
// Formats an LLD partition on an in-memory device, walks through the
// core LD operations (lists, blocks, read/write), brackets a multi-
// operation update in an ARU, and shows that state survives a clean
// close + reopen.
//
//   ./examples/quickstart
#include <cstdio>
#include <string>

#include "blockdev/mem_disk.h"
#include "ld/disk.h"
#include "lld/lld.h"

using namespace aru;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Check(Result<T> result, const char* what) {
  Check(result.status(), what);
  return std::move(result).value();
}

}  // namespace

int main() {
  // 1. A 64 MB RAM-backed device, formatted as a log-structured
  //    logical disk with 4 KB blocks and 512 KB segments.
  MemDisk device(64 * 1024 * 1024 / 512);
  lld::Options options;  // paper defaults: 4 KB blocks, 0.5 MB segments
  Check(lld::Lld::Format(device, options), "Format");
  auto disk = Check(lld::Lld::Open(device, options), "Open");
  std::printf("formatted: %llu logical blocks of %u bytes\n",
              static_cast<unsigned long long>(disk->capacity_blocks()),
              disk->block_size());

  // 2. Blocks live on ordered lists; allocation names a list and a
  //    predecessor (kListHead = the beginning of the list).
  const ld::ListId list = Check(disk->NewList(), "NewList");
  const ld::BlockId first = Check(disk->NewBlock(list, ld::kListHead),
                                  "NewBlock");
  const ld::BlockId second = Check(disk->NewBlock(list, first), "NewBlock");

  Bytes hello(disk->block_size());
  const std::string text = "hello, logical disk";
  std::copy(text.begin(), text.end(),
            reinterpret_cast<char*>(hello.data()));
  Check(disk->Write(first, hello), "Write");

  Bytes readback(disk->block_size());
  Check(disk->Read(first, readback), "Read");
  std::printf("read back: \"%s\"\n",
              reinterpret_cast<const char*>(readback.data()));

  // 3. An atomic recovery unit: several operations that recover
  //    all-or-nothing. AruScope aborts automatically unless committed.
  {
    ld::AruScope aru(*disk);
    Check(aru.status(), "BeginARU");
    Bytes payload(disk->block_size(), std::byte{0xab});
    Check(disk->Write(first, payload, aru.id()), "Write in ARU");
    Check(disk->Write(second, payload, aru.id()), "Write in ARU");
    // Until Commit(), these writes are shadow versions: visible inside
    // the ARU, invisible to simple reads.
    Bytes outside(disk->block_size());
    Check(disk->Read(first, outside), "Read outside ARU");
    std::printf("outside the ARU still sees: \"%s\"\n",
                reinterpret_cast<const char*>(outside.data()));
    Check(aru.Commit(), "EndARU");
  }
  std::printf("ARU committed: both blocks updated atomically\n");

  // 4. Durability is explicit: Flush makes all committed state
  //    persistent. Close() also writes a checkpoint.
  Check(disk->Flush(), "Flush");
  Check(disk->Close(), "Close");
  disk.reset();

  auto reopened = Check(lld::Lld::Open(device, options), "reopen");
  Bytes after(reopened->block_size());
  Check(reopened->Read(second, after), "Read after reopen");
  std::printf("after reopen, block %llu first byte: 0x%02x\n",
              static_cast<unsigned long long>(second.value()),
              static_cast<unsigned>(after[0]));

  const auto blocks = Check(reopened->ListBlocks(list), "ListBlocks");
  std::printf("list %llu holds %zu blocks\n",
              static_cast<unsigned long long>(list.value()), blocks.size());
  std::printf("quickstart OK\n");
  return 0;
}
