#!/usr/bin/env bash
# Static-analysis sweep: arulint (always), clang-tidy and clang-format
# (only when installed — the checks degrade to a skip note, never a
# silent pass-as-success on machines without LLVM). Exits non-zero when
# any check that actually ran found a problem.
#
# Usage: scripts/lint.sh [build-dir]   (default: build)
set -uo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
failures=0

# --- arulint: project-invariant checker (see docs/STATIC_ANALYSIS.md).
arulint_bin="$build_dir/tools/arulint/arulint"
if [ ! -x "$arulint_bin" ]; then
  echo "lint: building arulint..."
  cmake -B "$build_dir" > /dev/null && \
    cmake --build "$build_dir" --target arulint > /dev/null || {
      echo "lint: FAILED to build arulint"
      exit 1
    }
fi
echo "=== arulint ==="
if "$arulint_bin" --root src --root tools; then
  echo "arulint: clean"
else
  failures=$((failures + 1))
fi

# --- clang-tidy: generic bug classes (.clang-tidy at the repo root).
# Needs the compile database CMake always writes when asked.
if command -v clang-tidy > /dev/null 2>&1; then
  echo "=== clang-tidy ==="
  cmake -B "$build_dir" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  mapfile -t tidy_sources < <(find src tools -name '*.cc' | sort)
  if ! clang-tidy -p "$build_dir" --quiet "${tidy_sources[@]}"; then
    echo "clang-tidy: FAILED"
    failures=$((failures + 1))
  else
    echo "clang-tidy: clean"
  fi
else
  echo "lint: clang-tidy not installed, skipping"
fi

# --- clang-format: whitespace drift check, no rewriting.
if command -v clang-format > /dev/null 2>&1 && [ -f .clang-format ]; then
  echo "=== clang-format ==="
  mapfile -t fmt_sources < <(find src tools tests bench -name '*.cc' -o \
                                  -name '*.h' | sort)
  if ! clang-format --dry-run --Werror "${fmt_sources[@]}"; then
    echo "clang-format: FAILED"
    failures=$((failures + 1))
  else
    echo "clang-format: clean"
  fi
else
  echo "lint: clang-format (or .clang-format) not present, skipping"
fi

if [ "$failures" -ne 0 ]; then
  echo "lint: $failures check(s) FAILED"
  exit 1
fi
echo "lint: all green"
