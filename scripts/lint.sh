#!/usr/bin/env bash
# Static-analysis sweep: arulint (always, with a SARIF report), clang-tidy
# and clang-format (only when installed — the checks degrade to a skip
# note, never a silent pass-as-success on machines without LLVM). Exits
# non-zero when any check that actually ran found a problem.
#
# Usage: scripts/lint.sh [build-dir]   (default: build)
#
# Environment:
#   CLANG_FORMAT_BIN  formatter to use (default: clang-format). CI pins
#                     a specific major version here so results do not
#                     drift with the distro default.
#   CLANG_TIDY_BIN    analogous pin for clang-tidy.
set -uo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
failures=0

# --- arulint: project-invariant checker (see docs/STATIC_ANALYSIS.md).
arulint_bin="$build_dir/tools/arulint/arulint"
if [ ! -x "$arulint_bin" ]; then
  echo "lint: building arulint..."
  cmake -B "$build_dir" > /dev/null && \
    cmake --build "$build_dir" --target arulint > /dev/null || {
      echo "lint: FAILED to build arulint"
      exit 1
    }
fi
echo "=== arulint ==="
# The model cache persists across runs of the same build dir (and across
# CI jobs via actions/cache); --stats output is teed so CI can surface
# cache hits and the rule table in the job summary.
if "$arulint_bin" --root src --root tools --stats \
                  --cache-dir "$build_dir/arulint-cache" \
                  --sarif "$build_dir/arulint.sarif" \
                  --sarif-dir "$build_dir/arulint-sarif" \
                  2> >(tee "$build_dir/arulint-stats.txt" >&2); then
  echo "arulint: clean (SARIF: $build_dir/arulint.sarif," \
       "per-family: $build_dir/arulint-sarif/)"
else
  echo "arulint: FAILED (SARIF: $build_dir/arulint.sarif)"
  failures=$((failures + 1))
fi

# --- clang-tidy: generic bug classes (.clang-tidy at the repo root).
# Driven by the compile database the top-level CMakeLists always
# exports; covers every translation unit in it (src, tools, tests,
# bench), not just a hand-maintained subset.
clang_tidy_bin="${CLANG_TIDY_BIN:-clang-tidy}"
if command -v "$clang_tidy_bin" > /dev/null 2>&1; then
  echo "=== clang-tidy ($clang_tidy_bin) ==="
  cmake -B "$build_dir" > /dev/null
  if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "clang-tidy: $build_dir/compile_commands.json missing — run" \
         "'cmake -B $build_dir' from the repo root to generate it, FAILED"
    failures=$((failures + 1))
  else
    mapfile -t tidy_sources < <(find src tools tests bench -name '*.cc' \
                                     -not -path 'tests/arulint_fixtures/*' \
                                  | sort)
    if ! "$clang_tidy_bin" -p "$build_dir" --quiet "${tidy_sources[@]}"; then
      echo "clang-tidy: FAILED"
      failures=$((failures + 1))
    else
      echo "clang-tidy: clean"
    fi
  fi
else
  echo "lint: $clang_tidy_bin not on PATH — install it (e.g. apt install" \
       "clang-tidy-18) or point CLANG_TIDY_BIN at one, skipping"
fi

# --- clang-format: whitespace drift check, no rewriting. The fixture
# tree carries its own .clang-format with DisableFormat, so the find
# listing it is a no-op there; golden line numbers stay stable.
clang_format_bin="${CLANG_FORMAT_BIN:-clang-format}"
if command -v "$clang_format_bin" > /dev/null 2>&1 && \
   [ -f .clang-format ]; then
  echo "=== clang-format ($clang_format_bin) ==="
  mapfile -t fmt_sources < <(find src tools tests bench -name '*.cc' -o \
                                  -name '*.h' | sort)
  if ! "$clang_format_bin" --dry-run --Werror "${fmt_sources[@]}"; then
    echo "clang-format: FAILED"
    failures=$((failures + 1))
  else
    echo "clang-format: clean"
  fi
else
  echo "lint: $clang_format_bin not on PATH (or no repo .clang-format) —" \
       "install it (e.g. apt install clang-format-18) or point" \
       "CLANG_FORMAT_BIN at one, skipping"
fi

if [ "$failures" -ne 0 ]; then
  echo "lint: $failures check(s) FAILED"
  exit 1
fi
echo "lint: all green"
