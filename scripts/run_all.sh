#!/usr/bin/env bash
# Builds everything, runs the full test suite, every example, and every
# benchmark, capturing the outputs the repository documents:
#   test_output.txt   — ctest results
#   bench_output.txt  — all benchmark tables (paper figures + ablations)
set -u
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

for example in build/examples/*; do
  [ -x "$example" ] || continue
  echo "=== $example ==="
  "$example" || echo "EXAMPLE FAILED: $example"
done

{
  for bench in build/bench/*; do
    [ -x "$bench" ] || continue
    case "$bench" in
      *CMake*|*cmake*|*CTest*) continue ;;
    esac
    echo "===== $(basename "$bench") ====="
    "$bench"
    echo
  done
} 2>&1 | tee bench_output.txt
