#!/usr/bin/env bash
# Builds everything, runs the full test suite, every example, and every
# benchmark, capturing the outputs the repository documents:
#   test_output.txt   — ctest results
#   bench_output.txt  — all benchmark tables (paper figures + ablations)
#   ARU_REPORT.md     — aru_report over the BENCH_*.json / TRACE_*.json
#                       the benchmarks left behind (lock contention by
#                       site, timeseries, span critical paths)
#
# Exits non-zero if the build, any test, any example, or any benchmark
# fails (individual failures are reported and counted rather than
# aborting the sweep, so one bad benchmark still leaves a full report).
set -euo pipefail
cd "$(dirname "$0")/.."

# Prefer Ninja for fresh trees; an existing build/ keeps its generator
# (passing -G into it would be a hard CMake error).
if [ -d build ]; then
  cmake -B build
else
  cmake -B build -G Ninja
fi
cmake --build build

failures=0

if ! scripts/lint.sh build; then
  echo "LINT FAILED"
  failures=$((failures + 1))
fi

if ! ctest --test-dir build 2>&1 | tee test_output.txt; then
  echo "TESTS FAILED"
  failures=$((failures + 1))
fi

for example in build/examples/*; do
  # -f: directories like CMakeFiles/ pass -x alone
  [ -f "$example" ] && [ -x "$example" ] || continue
  echo "=== $example ==="
  if ! "$example"; then
    echo "EXAMPLE FAILED: $example"
    failures=$((failures + 1))
  fi
done

: > bench_output.txt
for bench in build/bench/*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  case "$bench" in
    *CMake*|*cmake*|*CTest*) continue ;;
  esac
  # Pinned arguments so CI artifacts are comparable across runs.
  args=()
  case "$(basename "$bench")" in
    bench_commit_batch) args=(--streams=4 --arus=300) ;;
    bench_parallel_reads) args=(--blocks=1024 --reads_per_thread=400) ;;
    bench_recovery) args=(--max-files=8000 --big-files=100000) ;;
  esac
  { echo "===== $(basename "$bench") ====="; } | tee -a bench_output.txt
  if ! "$bench" "${args[@]}" 2>&1 | tee -a bench_output.txt; then
    echo "BENCH FAILED: $bench" | tee -a bench_output.txt
    failures=$((failures + 1))
  fi
  echo | tee -a bench_output.txt
done

# Render the machine-readable outputs the benches just wrote into one
# markdown report. Benches run from the repo root, so the artifacts
# land here; traces are optional (only the concurrency benches write
# them).
bench_artifacts=(BENCH_*.json)
if [ -e "${bench_artifacts[0]}" ]; then
  report_args=(--out=ARU_REPORT.md)
  for trace in TRACE_*.json; do
    [ -e "$trace" ] && report_args+=("--trace=$trace")
  done
  if ! build/tools/aru_report/aru_report "${report_args[@]}" "${bench_artifacts[@]}"; then
    echo "REPORT FAILED"
    failures=$((failures + 1))
  fi
fi

if [ "$failures" -ne 0 ]; then
  echo "run_all: $failures step(s) FAILED"
  exit 1
fi
echo "run_all: all green"
